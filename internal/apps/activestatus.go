package apps

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// ActiveStatus displays which of a user's friends are currently online
// (paper §3.4). Devices report ONLINE every 30 seconds; the WAS publishes
// each report to /AS/uid. One device subscription fans out to one Pylon
// topic per friend. The BRASS keeps a per-stream map of online friends with
// a TTL and pushes batched updates periodically so devices aren't flooded.
type ActiveStatus struct {
	w Registrar

	// TTL is how long a status report stays fresh (paper: 30 s).
	TTL time.Duration
	// BatchInterval is the push cadence.
	BatchInterval time.Duration
}

// StatusTopic returns the Pylon topic for one user's presence.
func StatusTopic(uid socialgraph.UserID) pylon.Topic {
	return pylon.Topic(fmt.Sprintf("/AS/%d", uid))
}

// StatusPayload is one friend-status change pushed to devices.
type StatusPayload struct {
	User   uint64 `json:"user"`
	Online bool   `json:"online"`
}

// NewActiveStatus registers the WAS half and returns the application.
func NewActiveStatus(w Registrar) *ActiveStatus {
	a := &ActiveStatus{w: w, TTL: 30 * time.Second, BatchInterval: 5 * time.Second}

	// Devices call this every 30 s while online.
	w.RegisterMutation("reportActive", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		ctx.Publish(pylon.Event{
			Topic: StatusTopic(ctx.Viewer),
			Meta: map[string]string{
				"uid": strconv.FormatUint(uint64(ctx.Viewer), 10),
				"at":  strconv.FormatInt(ctx.Now.UnixNano(), 10),
			},
		}, false)
		return true, nil
	})

	// One device subscribe → one topic per friend (many BRASS→Pylon
	// subscriptions per device subscription).
	w.RegisterSubscription("activeStatus", func(ctx *was.Ctx, call was.FieldCall) ([]pylon.Topic, error) {
		friends := ctx.Srv.Graph.Friends(ctx.Viewer)
		topics := make([]pylon.Topic, len(friends))
		for i, f := range friends {
			topics[i] = StatusTopic(f)
		}
		return topics, nil
	})

	w.RegisterPayload(AppActiveStatus, func(ctx *was.Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		uid, _ := strconv.ParseUint(ev.Meta["uid"], 10, 64)
		return StatusPayload{User: uid, Online: true}, nil
	})
	return a
}

// Name implements brass.Application.
func (a *ActiveStatus) Name() string { return AppActiveStatus }

type asStream struct {
	online map[uint64]time.Time // friend → last report
	shown  map[uint64]bool      // what the device currently displays
	dirty  bool
	cancel func()
}

type asInstance struct {
	app *ActiveStatus
	rt  *brass.Runtime
}

// NewInstance implements brass.Application.
func (a *ActiveStatus) NewInstance(rt *brass.Runtime) brass.AppInstance {
	return &asInstance{app: a, rt: rt}
}

func (in *asInstance) OnStreamOpen(st *brass.Stream) error {
	topics, err := in.rt.ResolveSubscription(st.Viewer, st.Header(burst.HdrSubscription))
	if err != nil {
		return err
	}
	state := &asStream{
		online: make(map[uint64]time.Time),
		shown:  make(map[uint64]bool),
	}
	st.State = state
	for _, t := range topics {
		if err := st.AddTopic(t); err != nil {
			return err
		}
	}
	in.scheduleFlush(st, state)
	return nil
}

func (in *asInstance) scheduleFlush(st *brass.Stream, state *asStream) {
	state.cancel = in.rt.After(in.app.BatchInterval, func() {
		in.flush(st, state)
		if st.State == state {
			in.scheduleFlush(st, state)
		}
	})
}

// flush diffs the fresh-online set against what the device shows and pushes
// one batch with the changes (paper: "periodically pushes a batch update").
func (in *asInstance) flush(st *brass.Stream, state *asStream) {
	now := in.rt.Now()
	var acc brass.BatchAccumulator
	// Expirations: shown-online friends whose reports went stale.
	for uid, last := range state.online {
		if now.Sub(last) > in.app.TTL {
			delete(state.online, uid)
			if state.shown[uid] {
				delete(state.shown, uid)
				b, _ := json.Marshal(StatusPayload{User: uid, Online: false})
				acc.Add(burst.PayloadDelta(0, b))
			}
		}
	}
	// New onlines.
	for uid := range state.online {
		if !state.shown[uid] {
			state.shown[uid] = true
			b, _ := json.Marshal(StatusPayload{User: uid, Online: true})
			acc.Add(burst.PayloadDelta(0, b))
		}
	}
	state.dirty = false
	_ = acc.Flush(st)
}

func (in *asInstance) OnStreamClose(st *brass.Stream, reason string) {
	if state, ok := st.State.(*asStream); ok {
		if state.cancel != nil {
			state.cancel()
		}
		st.State = nil
	}
}

func (in *asInstance) OnEvent(ev pylon.Event) {
	uid, err := strconv.ParseUint(ev.Meta["uid"], 10, 64)
	if err != nil {
		return
	}
	now := in.rt.Now()
	for _, st := range in.rt.Instance().StreamsForTopic(ev.Topic) {
		state, ok := st.State.(*asStream)
		if !ok {
			continue
		}
		state.online[uid] = now
		state.dirty = true
	}
}

func (in *asInstance) OnAck(st *brass.Stream, seq uint64) {}

var _ brass.Application = (*ActiveStatus)(nil)
