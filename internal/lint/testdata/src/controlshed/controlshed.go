// Package controlshed is a brlint fixture for the control-never-shed rule:
// a value classified overload.Control must never reach a shedable sink.
// Pushing straight to the bounded queue with the Control constant is safe
// by construction (the queue's shed loop skips Control entries), and so is
// any wrapper that forwards the caller's class alongside the value. What
// the rule catches is classification loss: a wrapper that hardcodes Data,
// drops the value in a select-with-default, or otherwise sheds it
// regardless of the class the caller attached.
package controlshed

import "bladerunner/internal/overload"

type loop struct {
	tasks *overload.Queue[func()]
	ch    chan func()
}

// post forwards the caller's class with the value: Control stays Control
// all the way to the queue.
func (l *loop) post(fn func(), class overload.Class) {
	l.tasks.Push(fn, class)
}

// enqueue is a two-hop wrapper that still preserves the class.
func (l *loop) enqueue(fn func(), class overload.Class) {
	l.post(fn, class)
}

// postData loses the classification: whatever the caller said, the value
// is pushed Data-class and the queue may shed it.
func (l *loop) postData(fn func(), class overload.Class) {
	l.tasks.Push(fn, overload.Data)
}

// postDrop loses the value outright on a full channel: a best-effort drop
// is a shedable sink no class survives.
func (l *loop) postDrop(fn func(), class overload.Class) {
	select {
	case l.ch <- fn:
	default:
	}
}

func (l *loop) Lifecycle(fn func()) {
	l.tasks.Push(fn, overload.Control)
	l.post(fn, overload.Control)
	l.enqueue(fn, overload.Control)
	l.postData(fn, overload.Control) // want `control-never-shed: value classified overload.Control reaches a shedable sink: \(\*lint/testdata/src/controlshed.loop\).postData sheds its argument #1 regardless of class \(Data-class push to bounded overload.Queue at controlshed.go:\d+\)`
	l.postDrop(fn, overload.Control) // want `control-never-shed: value classified overload.Control reaches a shedable sink: \(\*lint/testdata/src/controlshed.loop\).postDrop sheds its argument #1 regardless of class \(select-with-default drop at controlshed.go:\d+\)`
}

// DataStaysShedable: Data-class values may shed; the rule only polices
// Control.
func (l *loop) DataStaysShedable(fn func()) {
	l.postData(fn, overload.Data)
	l.postDrop(fn, overload.Data)
}

// Allowed demonstrates the audited escape hatch for a hand-off that
// tolerates losing the final notification.
func (l *loop) Allowed(fn func()) {
	//brlint:allow(control-never-shed) fixture: teardown notification; the receiver re-checks the stop flag on its next wake, so a dropped wake loses nothing
	l.postDrop(fn, overload.Control)
}
