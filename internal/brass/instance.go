// Package brass implements BRASS (Bladerunner Application Stream Servers,
// paper §3.2): per-application stream processors that receive update events
// from Pylon, filter/rank/privacy-check them per device, and push selected
// updates down BURST streams.
//
// Architecture reproduced from the paper:
//
//   - Each application has its own BRASS implementation (the Application
//     interface); there is no generic configurable filter pipeline.
//   - BRASS is serverless: an instance spools up on a host the first time
//     a stream for its application arrives there, and despools when idle.
//   - Each instance runs single-threaded: all callbacks execute on one
//     event-loop goroutine, mirroring the JS V8 VMs Facebook uses, so
//     application code never needs locks.
//   - Hosts are multi-tenant: several application instances share a host.
//     A per-host subscription manager dedups Pylon subscriptions — a topic
//     is registered with Pylon once per host no matter how many local
//     instances want it (footnote 10).
package brass

import (
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/overload"
	"bladerunner/internal/pylon"
	"bladerunner/internal/trace"
)

// Application is one Bladerunner use case's BRASS implementation. Each of
// its instances is created on demand per host.
type Application interface {
	// Name is the application id carried in subscription headers.
	Name() string
	// NewInstance builds the per-host application state. All AppInstance
	// callbacks run on the instance's event loop.
	NewInstance(rt *Runtime) AppInstance
}

// AppInstance receives the application callbacks. Implementations are
// single-threaded by construction and must not block the loop for long.
type AppInstance interface {
	// OnStreamOpen is invoked when a device stream lands on this
	// instance. The app typically resolves the subscription to topics,
	// calls st.AddTopic for each, and initializes per-stream state.
	// Returning an error terminates the stream.
	OnStreamOpen(st *Stream) error
	// OnStreamClose is invoked when a stream ends (cancel, failure, or
	// termination).
	OnStreamClose(st *Stream, reason string)
	// OnEvent is invoked for each Pylon update event on a topic this
	// instance subscribed to.
	OnEvent(ev pylon.Event)
	// OnAck is invoked when a device acknowledges deltas.
	OnAck(st *Stream, seq uint64)
}

// Instance is one spooled-up BRASS: an application's state plus the event
// loop that serializes all its work.
type Instance struct {
	host *Host
	app  Application
	rt   *Runtime
	impl AppInstance

	tasks *overload.Queue[func()]
	quit  chan struct{}
	done  chan struct{}

	// Loop-owned state (no locks needed on the loop):
	topicStreams map[pylon.Topic]map[*Stream]bool
	streams      map[*Stream]bool

	// flowStreams mirrors the loop-owned streams set for the degraded-mode
	// signaler, which runs on whatever goroutine tripped the queue
	// transition and therefore cannot read the loop-owned map.
	flowMu      sync.Mutex
	flowStreams map[*Stream]bool

	mu      sync.Mutex
	stopped bool
}

// taskBuffer bounds the pending work per instance by default
// (HostConfig.LoopQueueDepth overrides). Pylon delivery is best-effort: a
// saturated loop sheds the OLDEST delivery task and counts it, while
// stream-lifecycle work (open/close/ack) rides the Control class and is
// never shed — the paper's "drop messages intelligently" happens in app
// logic; this bounded queue is the backstop.
const taskBuffer = 4096

func newInstance(h *Host, app Application) *Instance {
	depth := h.cfg.LoopQueueDepth
	if depth == 0 {
		depth = taskBuffer
	} else if depth < 0 {
		depth = 0 // explicit "unbounded"
	}
	inst := &Instance{
		host:         h,
		app:          app,
		tasks:        overload.NewQueue[func()](depth),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		topicStreams: make(map[pylon.Topic]map[*Stream]bool),
		streams:      make(map[*Stream]bool),
		flowStreams:  make(map[*Stream]bool),
	}
	inst.tasks.OnDegraded = func() { inst.signalFlow(burst.FlowDegraded) }
	inst.tasks.OnRecovered = func() { inst.signalFlow(burst.FlowRecovered) }
	inst.rt = &Runtime{host: h, inst: inst}
	inst.impl = app.NewInstance(inst.rt)
	go inst.loop()
	return inst
}

func (inst *Instance) loop() {
	defer close(inst.done)
	for {
		select {
		case <-inst.tasks.Ready():
			for {
				fn, _, ok := inst.tasks.Pop()
				if !ok {
					break
				}
				fn()
			}
		case <-inst.quit:
			// Drain remaining tasks before exiting so shutdown is
			// not racy with queued work.
			for {
				fn, _, ok := inst.tasks.Pop()
				if !ok {
					return
				}
				fn()
			}
		}
	}
}

// signalFlow tells every stream on this instance that its loop entered or
// left the shedding state. The detail carries the shed marker so devices
// know deltas may have been dropped and a resync (WAS point query) is
// needed — the gap cannot be trusted (DESIGN.md §7c).
func (inst *Instance) signalFlow(code burst.FlowCode) {
	detail := overload.ShedMarkerPrefix + "brass-loop"
	if code == burst.FlowRecovered {
		detail = overload.RecoveredMarkerPrefix + "brass-loop"
	}
	inst.flowMu.Lock()
	streams := make([]*Stream, 0, len(inst.flowStreams))
	for st := range inst.flowStreams {
		streams = append(streams, st)
	}
	inst.flowMu.Unlock()
	for _, st := range streams {
		// Control delta on the BURST stream; send errors mean the stream
		// is already gone, which is fine.
		_ = st.burst.SendBatch(burst.FlowStatusDelta(code, detail))
		inst.host.FlowSignals.Inc()
	}
}

// post enqueues fn onto the event loop as Control-class work (lifecycle,
// acks, timers): it is never shed. It reports false only when the
// instance has stopped.
func (inst *Instance) post(fn func()) bool {
	return inst.postClass(fn, overload.Control)
}

// postClass enqueues fn with an explicit shed class. Data-class work
// (event deliveries) may displace the oldest queued Data task when the
// loop is saturated; the displaced work is counted in LoopOverflows.
func (inst *Instance) postClass(fn func(), class overload.Class) bool {
	inst.mu.Lock()
	if inst.stopped {
		inst.mu.Unlock()
		return false
	}
	inst.mu.Unlock()
	if shed := inst.tasks.Push(fn, class); shed > 0 {
		inst.host.LoopOverflows.Add(int64(shed))
	}
	return true
}

// call posts fn and waits for it to run — used by tests and by host
// teardown paths that need synchronous semantics.
func (inst *Instance) call(fn func()) {
	ch := make(chan struct{})
	if !inst.post(func() {
		defer close(ch)
		fn()
	}) {
		return
	}
	select {
	case <-ch:
	case <-inst.done:
	}
}

// stop despools the instance: pending tasks are drained, then the loop
// exits. Host-level maps are cleaned by the caller.
func (inst *Instance) stop() {
	inst.mu.Lock()
	if inst.stopped {
		inst.mu.Unlock()
		return
	}
	inst.stopped = true
	inst.mu.Unlock()
	close(inst.quit)
	<-inst.done
}

// deliver posts a Pylon event to the loop, counting per-stream decisions:
// every event arriving at an instance forces one keep/drop decision per
// candidate stream (Fig 8's "decisions on updates"). Deliveries are
// Data-class: a saturated loop sheds the oldest queued delivery rather
// than blocking Pylon or losing lifecycle work.
//
// audited allocation.
//
//brlint:hotpath per-event instance hand-off; the posted closure is the one
func (inst *Instance) deliver(ev pylon.Event) {
	//brlint:allow(hot-path-alloc) the event-loop task closure is the delivery unit itself: one bounded capture per event, shed oldest-first by the Data-class queue under overload
	inst.postClass(func() {
		sp := inst.host.cfg.Tracer.Start(ev.Trace, trace.HopDeliver, trace.HopFanout)
		defer sp.End()
		sp.Annotate("host", inst.host.cfg.ID)
		sp.Annotate("app", inst.app.Name())
		if streams := inst.topicStreams[ev.Topic]; len(streams) > 0 {
			inst.host.Decisions.Add(int64(len(streams)))
			sp.AnnotateInt("streams", int64(len(streams)))
		} else {
			// Subscribed with no local streams (e.g. friend-status
			// fan-in): still one decision by the app.
			inst.host.Decisions.Inc()
			sp.AnnotateInt("streams", 0)
		}
		inst.impl.OnEvent(ev)
	}, overload.Data)
}

// addTopicRef registers st's interest in topic (loop-owned).
func (inst *Instance) addTopicRef(topic pylon.Topic, st *Stream) error {
	set := inst.topicStreams[topic]
	first := set == nil
	if first {
		set = make(map[*Stream]bool)
		inst.topicStreams[topic] = set
	}
	if set[st] {
		return nil
	}
	set[st] = true
	st.topics[topic] = true
	if first {
		if err := inst.host.subscribeTopic(topic, inst); err != nil {
			delete(inst.topicStreams, topic)
			delete(st.topics, topic)
			return err
		}
	}
	return nil
}

// dropTopicRef removes st's interest; the last reference unsubscribes the
// instance (and possibly the host) from Pylon.
func (inst *Instance) dropTopicRef(topic pylon.Topic, st *Stream) {
	set := inst.topicStreams[topic]
	if set == nil || !set[st] {
		return
	}
	delete(set, st)
	delete(st.topics, topic)
	if len(set) == 0 {
		delete(inst.topicStreams, topic)
		inst.host.unsubscribeTopic(topic, inst)
	}
}

// StreamsForTopic returns the streams currently interested in topic. Only
// call from the event loop (i.e. from application callbacks).
func (inst *Instance) StreamsForTopic(topic pylon.Topic) []*Stream {
	set := inst.topicStreams[topic]
	out := make([]*Stream, 0, len(set))
	for st := range set {
		out = append(out, st)
	}
	return out
}

// Streams returns all open streams on this instance (loop-only).
func (inst *Instance) Streams() []*Stream {
	out := make([]*Stream, 0, len(inst.streams))
	for st := range inst.streams {
		out = append(out, st)
	}
	return out
}

// openStream runs the full stream-open sequence on the loop.
func (inst *Instance) openStream(st *Stream) {
	inst.post(func() {
		inst.streams[st] = true
		if err := inst.impl.OnStreamOpen(st); err != nil {
			delete(inst.streams, st)
			for topic := range st.topics {
				inst.dropTopicRef(topic, st)
			}
			_ = st.burst.Terminate(fmt.Sprintf("rejected: %v", err))
			return
		}
		inst.flowMu.Lock()
		inst.flowStreams[st] = true
		inst.flowMu.Unlock()
		inst.host.StreamsOpened.Inc()
		// A stream landing on an already-shedding loop learns immediately
		// that deltas may be dropped, so its device can resync.
		if inst.tasks.Shedding() {
			_ = st.burst.SendBatch(burst.FlowStatusDelta(
				burst.FlowDegraded, overload.ShedMarkerPrefix+"brass-loop"))
			inst.host.FlowSignals.Inc()
		}
	})
}

// closeStream runs the stream-close sequence on the loop.
func (inst *Instance) closeStream(st *Stream, reason string) {
	inst.post(func() {
		if !inst.streams[st] {
			return
		}
		delete(inst.streams, st)
		inst.flowMu.Lock()
		delete(inst.flowStreams, st)
		inst.flowMu.Unlock()
		for topic := range st.topics {
			inst.dropTopicRef(topic, st)
		}
		inst.impl.OnStreamClose(st, reason)
		inst.host.StreamsClosed.Inc()
		if len(inst.streams) == 0 {
			// Per-stream instances despool with their stream.
			inst.host.despool(inst)
		}
	})
}

// After schedules fn on the event loop after d (application timers).
func (inst *Instance) After(d time.Duration, fn func()) (cancel func()) {
	return inst.host.sched.After(d, func() { inst.post(fn) })
}
