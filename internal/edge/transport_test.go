package edge

import (
	"io"
	"net"
	"testing"
	"time"

	"bladerunner/internal/burst"
)

func TestBURSTOverRealTCP(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	srv := &upstreamServer{name: "brass-tcp"}
	if _, err := n.Serve("brass-tcp", srv.accept); err != nil {
		t.Fatal(err)
	}
	p := NewProxy("pop-tcp", n, StaticRouter("brass-tcp"))
	defer p.Close()
	if _, err := n.Serve("pop-tcp", p.Accept); err != nil {
		t.Fatal(err)
	}

	rwc, err := n.Dial("pop-tcp")
	if err != nil {
		t.Fatal(err)
	}
	cli := burst.NewClient("device", rwc, nil)
	defer cli.Close()

	st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp: "x", burst.HdrTopic: "/tcp/1",
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream over TCP", func() bool { return srv.stream(0) != nil })
	if got := srv.stream(0).Request().Header[burst.HdrTopic]; got != "/tcp/1" {
		t.Errorf("topic over TCP = %q", got)
	}
	if err := srv.stream(0).SendBatch(burst.PayloadDelta(1, []byte("over real sockets"))); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-st.Events:
		if string(batch[0].Payload) != "over real sockets" {
			t.Errorf("payload = %q", batch[0].Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery over TCP")
	}
	// Rewrites also traverse TCP.
	if err := srv.stream(0).RewriteHeaderField("k", "v"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rewrite over TCP", func() bool { return st.Request().Header["k"] == "v" })
}

func TestTCPNetworkUnknownTarget(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	if _, err := n.Dial("ghost"); err == nil {
		t.Error("dial to unknown target succeeded")
	}
}

func TestLastMileConnLatency(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	lm := &LastMileConn{Inner: a, Latency: 30 * time.Millisecond}
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := lm.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Errorf("write took %v, want >= 30ms latency", took)
	}
	_ = lm.Close()
}

func TestLastMileConnBandwidth(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	lm := &LastMileConn{Inner: a, BytesPerSec: 10_000} // 10 KB/s
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	// 1000 bytes at 10KB/s = 100ms of serialization.
	start := time.Now()
	if _, err := lm.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 90*time.Millisecond {
		t.Errorf("1000B at 10KB/s took %v, want ~100ms", took)
	}
	_ = lm.Close()
}

func TestFlakyConnFailsAfterBytes(t *testing.T) {
	a, b := net.Pipe()
	fc := &FlakyConn{Inner: a, FailAfterBytes: 10}
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := fc.Write([]byte("12345")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := fc.Write([]byte("1234567890")); err != io.ErrClosedPipe {
		t.Errorf("second write err = %v, want ErrClosedPipe", err)
	}
	if _, err := fc.Read(make([]byte, 4)); err != io.ErrClosedPipe {
		t.Errorf("read after death err = %v", err)
	}
	if _, err := fc.Write([]byte("x")); err != io.ErrClosedPipe {
		t.Errorf("write after death err = %v", err)
	}
}

// TestFlakyLastMileTriggersDeviceRecovery chains the link models with a
// BURST session: when the flaky link dies mid-stream, the client learns via
// the synthesized flow status — the exact signal devices act on.
func TestFlakyLastMileTriggersDeviceRecovery(t *testing.T) {
	a, b := net.Pipe()
	srv := &upstreamServer{name: "brass"}
	srv.accept(b)
	flaky := &FlakyConn{Inner: a, FailAfterBytes: 256}
	cli := burst.NewClient("device", flaky, nil)
	defer cli.Close()
	st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{burst.HdrTopic: "/f"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	// Acks until the link budget is exhausted; the session dies.
	for i := 0; i < 50; i++ {
		if err := st.Ack(uint64(i)); err != nil {
			break
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case batch, ok := <-st.Events:
			if !ok {
				return // channel closed after flow status: recovery path engaged
			}
			for _, d := range batch {
				if d.Type == burst.DeltaFlowStatus && d.Flow == burst.FlowDegraded {
					// Got the failure signal.
				}
			}
		case <-deadline:
			t.Fatal("link death never surfaced to the client")
		}
	}
}

func TestTransformDialerInsertsLinkModel(t *testing.T) {
	n := NewPipeNetwork()
	srv := &upstreamServer{name: "brass"}
	n.Register("brass", srv.accept)
	slow := TransformDialer{
		Inner: n,
		Transform: func(rwc io.ReadWriteCloser) io.ReadWriteCloser {
			return &LastMileConn{Inner: rwc, Latency: 20 * time.Millisecond}
		},
	}
	rwc, err := slow.Dial("brass")
	if err != nil {
		t.Fatal(err)
	}
	cli := burst.NewClient("device", rwc, nil)
	defer cli.Close()
	start := time.Now()
	if _, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{burst.HdrTopic: "/x"}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream via slow link", func() bool { return srv.stream(0) != nil })
	if took := time.Since(start); took < 20*time.Millisecond {
		t.Errorf("subscribe took %v, want >= 20ms link latency", took)
	}
	// Errors pass through.
	if _, err := slow.Dial("ghost"); err == nil {
		t.Error("unknown target dial succeeded through transform")
	}
	// Nil transform is identity.
	plain := TransformDialer{Inner: n}
	if _, err := plain.Dial("brass"); err != nil {
		t.Errorf("identity transform dial: %v", err)
	}
}
