package device

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/edge"
	"bladerunner/internal/faults"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fakePOP is a scripted BURST endpoint registered as a POP target.
type fakePOP struct {
	name string

	mu       sync.Mutex
	streams  []*burst.ServerStream
	cancels  int
	sessions []*burst.ServerSession
}

func (f *fakePOP) accept(rwc io.ReadWriteCloser) {
	var ss *burst.ServerSession
	ss = burst.NewServerSession(f.name, rwc, burst.ServerHandlerFuncs{
		Subscribe: func(st *burst.ServerStream, sub burst.Subscribe) {
			f.mu.Lock()
			f.streams = append(f.streams, st)
			f.mu.Unlock()
		},
		Cancel: func(st *burst.ServerStream, c burst.Cancel) {
			f.mu.Lock()
			f.cancels++
			f.mu.Unlock()
		},
	})
	f.mu.Lock()
	f.sessions = append(f.sessions, ss)
	f.mu.Unlock()
}

func (f *fakePOP) stream(i int) *burst.ServerStream {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i >= len(f.streams) {
		return nil
	}
	return f.streams[i]
}

func (f *fakePOP) kill() {
	f.mu.Lock()
	ss := append([]*burst.ServerSession(nil), f.sessions...)
	f.sessions = nil
	f.mu.Unlock()
	for _, s := range ss {
		_ = s.Close()
	}
}

func newWAS(t *testing.T) *was.Server {
	t.Helper()
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	pyl := pylon.MustNew(pylon.DefaultConfig(), kvstore.MustNewCluster(nodes, 3))
	store := tao.MustNewStore(tao.DefaultConfig(), nil)
	graph := socialgraph.MustGenerate(socialgraph.Config{Users: 20, MeanFriends: 3, Seed: 1})
	return was.New(store, graph, pyl, nil)
}

type devEnv struct {
	net  *edge.PipeNetwork
	popA *fakePOP
	popB *fakePOP
	dev  *Device
	was  *was.Server
}

func newDevEnv(t *testing.T) *devEnv {
	t.Helper()
	n := edge.NewPipeNetwork()
	a, b := &fakePOP{name: "pop-a"}, &fakePOP{name: "pop-b"}
	n.Register("pop-a", a.accept)
	n.Register("pop-b", b.accept)
	w := newWAS(t)
	d := New(Config{
		User:           7,
		POPs:           []string{"pop-a", "pop-b"},
		ReconnectDelay: 5 * time.Millisecond,
	}, n, w, nil)
	t.Cleanup(d.Close)
	return &devEnv{net: n, popA: a, popB: b, dev: d, was: w}
}

func TestSubscribeRequiresConnection(t *testing.T) {
	env := newDevEnv(t)
	if _, err := env.dev.Subscribe("app", "s", nil); err != ErrNotConnected {
		t.Errorf("err = %v", err)
	}
}

func TestConnectSubscribeReceive(t *testing.T) {
	env := newDevEnv(t)
	if err := env.dev.Connect(); err != nil {
		t.Fatal(err)
	}
	if !env.dev.Connected() {
		t.Fatal("not connected")
	}
	st, err := env.dev.Subscribe("lvc", "liveVideoComments(videoID: 3)", burst.Header{"x": "y"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pop stream", func() bool { return env.popA.stream(0) != nil })
	req := env.popA.stream(0).Request()
	if req.Header[burst.HdrApp] != "lvc" || req.Header[burst.HdrUser] != "7" || req.Header["x"] != "y" {
		t.Errorf("header = %+v", req.Header)
	}
	if err := env.popA.stream(0).SendBatch(burst.PayloadDelta(4, []byte("c1"))); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-st.Updates:
		if string(d.Payload) != "c1" || d.Seq != 4 {
			t.Errorf("delta = %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no update")
	}
	if st.LastSeq() != 4 {
		t.Errorf("LastSeq = %d", st.LastSeq())
	}
	if env.dev.Updates.Value() != 1 {
		t.Errorf("Updates = %d", env.dev.Updates.Value())
	}
}

func TestMaxStreams(t *testing.T) {
	n := edge.NewPipeNetwork()
	pop := &fakePOP{name: "pop"}
	n.Register("pop", pop.accept)
	d := New(Config{User: 1, POPs: []string{"pop"}, MaxStreams: 2}, n, newWAS(t), nil)
	defer d.Close()
	if err := d.Connect(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := d.Subscribe("a", "s", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Subscribe("a", "s", nil); err == nil {
		t.Error("stream cap not enforced")
	}
	if d.Streams() != 2 {
		t.Errorf("Streams = %d", d.Streams())
	}
}

func TestReconnectRotatesPOPAndResubscribes(t *testing.T) {
	env := newDevEnv(t)
	if err := env.dev.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := env.dev.Subscribe("lvc", "sub", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream on pop-a", func() bool { return env.popA.stream(0) != nil })

	// The serving side rewrites a resume token into the request.
	if err := env.popA.stream(0).RewriteHeaderField(burst.HdrResumeSeq, "12"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rewrite stored", func() bool {
		return st.Request().Header[burst.HdrResumeSeq] == "12"
	})

	env.popA.kill() // POP fails

	// Device reconnects (rotating to pop-b) and resubscribes with the
	// rewritten request.
	waitFor(t, "resubscribed on pop-b", func() bool { return env.popB.stream(0) != nil })
	req := env.popB.stream(0).Request()
	if req.Header[burst.HdrResumeSeq] != "12" {
		t.Errorf("resubscribe lost rewrite: %+v", req.Header)
	}
	if env.dev.Reconnects.Value() != 1 || env.dev.Resubscribes.Value() != 1 {
		t.Errorf("reconnects=%d resubs=%d", env.dev.Reconnects.Value(), env.dev.Resubscribes.Value())
	}
	// Flow channel observed recovery.
	select {
	case code := <-st.Flow:
		if code != burst.FlowDegraded && code != burst.FlowRecovered {
			t.Errorf("flow = %v", code)
		}
	case <-time.After(time.Second):
		t.Error("no flow event after reconnect")
	}
	// Stream still delivers.
	if err := env.popB.stream(0).SendBatch(burst.PayloadDelta(13, []byte("after"))); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-st.Updates:
		if string(d.Payload) != "after" {
			t.Errorf("payload = %q", d.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no update after reconnect")
	}
}

func TestCancelClosesChannelsAndNotifiesServer(t *testing.T) {
	env := newDevEnv(t)
	if err := env.dev.Connect(); err != nil {
		t.Fatal(err)
	}
	st, _ := env.dev.Subscribe("a", "s", nil)
	waitFor(t, "stream", func() bool { return env.popA.stream(0) != nil })
	st.Cancel("done")
	waitFor(t, "server cancel", func() bool {
		env.popA.mu.Lock()
		defer env.popA.mu.Unlock()
		return env.popA.cancels == 1
	})
	if _, ok := <-st.Updates; ok {
		t.Error("Updates open after cancel")
	}
	if env.dev.Streams() != 0 {
		t.Errorf("Streams = %d", env.dev.Streams())
	}
	st.Cancel("again") // idempotent
}

func TestServerTerminationClosesStream(t *testing.T) {
	env := newDevEnv(t)
	if err := env.dev.Connect(); err != nil {
		t.Fatal(err)
	}
	st, _ := env.dev.Subscribe("a", "s", nil)
	waitFor(t, "stream", func() bool { return env.popA.stream(0) != nil })
	_ = env.popA.stream(0).Terminate("bye")
	waitFor(t, "stream closed", func() bool { return env.dev.Streams() == 0 })
	for range st.Updates {
	} // drains and exits: channel closed
}

func TestQueryAndMutateHitWAS(t *testing.T) {
	env := newDevEnv(t)
	w := env.was
	w.RegisterQuery("ping", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		return "pong", nil
	})
	w.RegisterMutation("set", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		return ctx.Viewer, nil
	})
	out, err := env.dev.Query("ping")
	if err != nil || string(out) != `"pong"` {
		t.Errorf("query = %s, %v", out, err)
	}
	out, err = env.dev.Mutate("set")
	if err != nil || string(out) != "7" {
		t.Errorf("mutate = %s, %v", out, err)
	}
	if env.dev.Polls.Value() != 1 {
		t.Errorf("Polls = %d", env.dev.Polls.Value())
	}
}

func TestDialFailureRotatesPOP(t *testing.T) {
	env := newDevEnv(t)
	env.net.SetDown("pop-a", true)
	if err := env.dev.Connect(); err == nil {
		t.Fatal("dial to down pop succeeded")
	}
	// Second attempt goes to pop-b.
	if err := env.dev.Connect(); err != nil {
		t.Fatalf("second connect: %v", err)
	}
	if !env.dev.Connected() {
		t.Error("not connected after rotation")
	}
}

func TestCloseIsFinal(t *testing.T) {
	env := newDevEnv(t)
	if err := env.dev.Connect(); err != nil {
		t.Fatal(err)
	}
	st, _ := env.dev.Subscribe("a", "s", nil)
	env.dev.Close()
	if _, ok := <-st.Updates; ok {
		t.Error("stream open after device close")
	}
	if err := env.dev.Connect(); err == nil {
		t.Error("connect after close succeeded")
	}
	env.dev.Close() // idempotent
}

func TestStartPresenceReportsPeriodically(t *testing.T) {
	env := newDevEnv(t)
	w := env.was
	var mu sync.Mutex
	reports := 0
	w.RegisterMutation("reportActive", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		mu.Lock()
		reports++
		mu.Unlock()
		return true, nil
	})
	stop := env.dev.StartPresence(10 * time.Millisecond)
	waitFor(t, "several reports", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return reports >= 3
	})
	stop()
	mu.Lock()
	at := reports
	mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	after := reports
	mu.Unlock()
	if after > at+1 { // one in-flight tick may land after stop
		t.Errorf("reports continued after stop: %d -> %d", at, after)
	}
	// Device close also ends reporting without panics.
	stop2 := env.dev.StartPresence(5 * time.Millisecond)
	defer stop2()
	env.dev.Close()
	time.Sleep(30 * time.Millisecond)
}

// TestPerStreamRetryRecoversOrphanedStream exercises the per-stream
// resubscribe retry: a stream left with no live client stream while the
// device holds a healthy session (the state a failed session-level
// resubscribe leaves behind) must re-establish itself via its backoff
// retry instead of waiting for the next session loss.
func TestPerStreamRetryRecoversOrphanedStream(t *testing.T) {
	env := newDevEnv(t)
	if err := env.dev.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := env.dev.Subscribe("app", "s", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial stream", func() bool { return env.popA.stream(0) != nil })

	// Orphan the stream: no current client stream, healthy session.
	st.mu.Lock()
	st.cur = nil
	st.curCli = nil
	st.mu.Unlock()
	st.scheduleResubscribe()

	waitFor(t, "retry re-subscribed", func() bool { return env.popA.stream(1) != nil })
	waitFor(t, "FlowRecovered", func() bool {
		select {
		case code := <-st.Flow:
			return code == burst.FlowRecovered
		default:
			return false
		}
	})
	if st.dev.Resubscribes.Value() != 1 {
		t.Errorf("Resubscribes = %d", st.dev.Resubscribes.Value())
	}
}

// TestResubscribeFailureArmsRetry drives the failure path itself: a
// resubscribe against a dead session must not strand the stream — the
// backoff retry re-establishes it on the device's healthy session.
func TestResubscribeFailureArmsRetry(t *testing.T) {
	env := newDevEnv(t)
	if err := env.dev.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := env.dev.Subscribe("app", "s", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial stream", func() bool { return env.popA.stream(0) != nil })

	// A client whose transport is already dead: Resubscribe on it fails.
	c1, c2 := net.Pipe()
	_ = c1.Close()
	_ = c2.Close()
	dead := burst.NewClient("dead", c1, func(error) {})
	st.mu.Lock()
	st.cur = nil
	st.curCli = nil
	st.mu.Unlock()
	st.resubscribe(dead)

	// The failed attempt must have armed the per-stream retry, which lands
	// on the live session.
	waitFor(t, "retry after failure", func() bool { return env.popA.stream(1) != nil })
}

// TestCancelStopsPendingRetry verifies stream teardown cancels an armed
// resubscribe retry.
func TestCancelStopsPendingRetry(t *testing.T) {
	n := edge.NewPipeNetwork()
	pop := &fakePOP{name: "pop-a"}
	n.Register("pop-a", pop.accept)
	d := New(Config{
		User: 7,
		POPs: []string{"pop-a"},
		// Slow backoff so the retry is still pending when Cancel runs.
		Backoff: faults.BackoffPolicy{Base: 200 * time.Millisecond, NoJitter: true},
	}, n, newWAS(t), nil)
	t.Cleanup(d.Close)
	if err := d.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := d.Subscribe("app", "s", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial stream", func() bool { return pop.stream(0) != nil })
	st.mu.Lock()
	st.cur = nil
	st.curCli = nil
	st.mu.Unlock()
	st.scheduleResubscribe()
	st.mu.Lock()
	armed := st.retryCancel != nil
	st.mu.Unlock()
	if !armed {
		t.Fatal("retry not armed")
	}
	st.Cancel("test")
	st.mu.Lock()
	cleared := st.retryCancel == nil
	st.mu.Unlock()
	if !cleared {
		t.Error("Cancel left the retry armed")
	}
	time.Sleep(300 * time.Millisecond)
	if pop.stream(1) != nil {
		t.Error("cancelled stream resubscribed anyway")
	}
}
