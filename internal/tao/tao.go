// Package tao implements a faithful miniature of TAO, Facebook's
// distributed social-graph store (Bronson et al., USENIX ATC '13), which is
// the storage substrate Bladerunner sits in front of.
//
// The model preserves the properties the paper's evaluation depends on:
//
//   - Objects and typed associations, sharded by id. A point query (object
//     get, or a specific association) touches exactly one shard.
//   - Association lists are time-ordered and, when they grow hot, their
//     index is partitioned across many shards — so range queries ("all
//     comments on video V since T") touch many shards, and intersect
//     queries touch even more. This is the cost asymmetry that makes
//     polling expensive and BRASS point-fetches cheap (paper §1, §5).
//   - Leader/follower caching with asynchronous invalidation, so reads are
//     served close to the reader and writes invalidate remote followers
//     after a replication delay.
//
// All methods are safe for concurrent use.
package tao

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"bladerunner/internal/metrics"
	"bladerunner/internal/sim"
)

// Reader is the read surface applications use for payload resolution and
// range queries. Both the leader Store and a regional Follower satisfy it,
// so the WAS can route reads to a region-local replica (with its modeled
// replication lag) while writes always go to the leader.
type Reader interface {
	ObjectGet(id ObjID) (Object, error)
	AssocRange(id1 ObjID, typ AssocType, offset, limit int) []Assoc
}

// ObjID identifies an object (node) in the graph store.
type ObjID uint64

// ObjType is the type tag of an object ("user", "video", "comment", ...).
type ObjType string

// AssocType is the type tag of an association (edge), e.g. "commented_on".
type AssocType string

// ErrNotFound is returned when an object or association does not exist.
var ErrNotFound = errors.New("tao: not found")

// Object is a node with a free-form property bag.
type Object struct {
	ID      ObjID
	Type    ObjType
	Data    map[string]string
	Created time.Time
	Version uint64
}

// Assoc is a typed, directed edge from ID1 to ID2 with a timestamp and
// payload. The inverse edge is not created implicitly.
type Assoc struct {
	ID1  ObjID
	Type AssocType
	ID2  ObjID
	Time time.Time
	Data string
}

// Config parameterizes a Store.
type Config struct {
	// Shards is the number of storage shards. Must be > 0.
	Shards int
	// IndexShardCapacity models index partitioning for hot association
	// lists: a range query over a list of length L is accounted as
	// touching ceil(L/IndexShardCapacity) shards (minimum 1). The paper's
	// footnote 5 describes why hot lists must span many shards.
	IndexShardCapacity int
}

// DefaultConfig returns a Store configuration suitable for tests and the
// experiment harness.
func DefaultConfig() Config {
	return Config{Shards: 64, IndexShardCapacity: 512}
}

// Store is the sharded graph store (the "TAO leader" tier).
type Store struct {
	cfg    Config
	clock  sim.Clock
	shards []*shard
	nextID sync.Mutex // guards idCounter
	idCtr  ObjID

	stats *Stats

	// replMu guards the attached regional followers. Every committed write
	// schedules an invalidation on each follower after its sampled
	// replication lag — TAO's asynchronous cross-region invalidation.
	replMu  sync.Mutex
	repl    []replicaLink
	replRng *rand.Rand
}

// replicaLink is one attached regional follower and its invalidation lag.
type replicaLink struct {
	region string
	f      *Follower
	lag    sim.Dist
	sched  sim.Scheduler
}

type assocKey struct {
	id1 ObjID
	typ AssocType
}

type shard struct {
	mu      sync.RWMutex
	objects map[ObjID]*Object
	// assocs holds time-descending association lists.
	assocs map[assocKey][]Assoc
}

// NewStore builds a Store with the given configuration and clock.
func NewStore(cfg Config, clock sim.Clock) (*Store, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("tao: Shards must be positive, got %d", cfg.Shards)
	}
	if cfg.IndexShardCapacity <= 0 {
		return nil, fmt.Errorf("tao: IndexShardCapacity must be positive, got %d",
			cfg.IndexShardCapacity)
	}
	if clock == nil {
		clock = sim.RealClock{}
	}
	s := &Store{cfg: cfg, clock: clock, stats: NewStats()}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{
			objects: make(map[ObjID]*Object),
			assocs:  make(map[assocKey][]Assoc),
		}
	}
	return s, nil
}

// MustNewStore is NewStore that panics on error.
func MustNewStore(cfg Config, clock sim.Clock) *Store {
	s, err := NewStore(cfg, clock)
	if err != nil {
		panic(err)
	}
	return s
}

// Stats returns the store's query statistics.
func (s *Store) Stats() *Stats { return s.stats }

// AttachFollower registers a regional follower for write invalidation:
// every committed write on this leader invalidates f's cached copy after a
// lag sampled from dist (nil or zero-mean = immediately). sched drives the
// delayed invalidations; seed makes the lag sampling deterministic.
func (s *Store) AttachFollower(region string, f *Follower, lag sim.Dist, sched sim.Scheduler, seed int64) {
	if sched == nil {
		sched = sim.RealClock{}
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.replRng == nil {
		s.replRng = rand.New(rand.NewSource(seed))
	}
	s.repl = append(s.repl, replicaLink{region: region, f: f, lag: lag, sched: sched})
}

// replTask is one scheduled follower invalidation.
type replTask struct {
	f     *Follower
	d     time.Duration
	sched sim.Scheduler
}

// replSnapshot samples each attached follower's lag under replMu and
// returns the invalidation schedule; nil when no followers are attached
// (the common single-region case pays one mutex round-trip per write).
func (s *Store) replSnapshot() []replTask {
	s.replMu.Lock()
	if len(s.repl) == 0 {
		s.replMu.Unlock()
		return nil
	}
	tasks := make([]replTask, 0, len(s.repl))
	for _, r := range s.repl {
		var d time.Duration
		if r.lag != nil {
			d = r.lag.Sample(s.replRng)
		}
		tasks = append(tasks, replTask{f: r.f, d: d, sched: r.sched})
	}
	s.replMu.Unlock()
	return tasks
}

// invalidateFollowersObj propagates an object write to every attached
// follower after its sampled replication lag.
func (s *Store) invalidateFollowersObj(id ObjID) {
	for _, t := range s.replSnapshot() {
		if t.d <= 0 {
			t.f.InvalidateObject(id)
			continue
		}
		f := t.f
		t.sched.After(t.d, func() { f.InvalidateObject(id) })
	}
}

// invalidateFollowersAssoc propagates an association-list write to every
// attached follower after its sampled replication lag.
func (s *Store) invalidateFollowersAssoc(id1 ObjID, typ AssocType) {
	for _, t := range s.replSnapshot() {
		if t.d <= 0 {
			t.f.InvalidateAssoc(id1, typ)
			continue
		}
		f := t.f
		t.sched.After(t.d, func() { f.InvalidateAssoc(id1, typ) })
	}
}

func (s *Store) shardFor(id ObjID) *shard {
	// Fibonacci hashing spreads sequential IDs across shards.
	h := uint64(id) * 0x9E3779B97F4A7C15
	return s.shards[h%uint64(len(s.shards))]
}

// ObjectAdd creates a new object of the given type with data and returns
// its allocated ID.
func (s *Store) ObjectAdd(typ ObjType, data map[string]string) ObjID {
	s.nextID.Lock()
	s.idCtr++
	id := s.idCtr
	s.nextID.Unlock()

	obj := &Object{ID: id, Type: typ, Data: cloneData(data), Created: s.clock.Now(), Version: 1}
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.objects[id] = obj
	sh.mu.Unlock()
	s.stats.recordWrite(1)
	return id
}

// ObjectGet returns a copy of the object with the given id. This is a point
// query touching one shard.
func (s *Store) ObjectGet(id ObjID) (Object, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	obj, ok := sh.objects[id]
	var out Object
	if ok {
		out = *obj
		out.Data = cloneData(obj.Data)
	}
	sh.mu.RUnlock()
	s.stats.recordPoint(1)
	if !ok {
		return Object{}, fmt.Errorf("object %d: %w", id, ErrNotFound)
	}
	return out, nil
}

// ObjectUpdate merges data into the object's property bag and bumps its
// version.
func (s *Store) ObjectUpdate(id ObjID, data map[string]string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	obj, ok := sh.objects[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("object %d: %w", id, ErrNotFound)
	}
	if obj.Data == nil {
		obj.Data = make(map[string]string, len(data))
	}
	for k, v := range data {
		obj.Data[k] = v
	}
	obj.Version++
	sh.mu.Unlock()
	s.stats.recordWrite(1)
	s.invalidateFollowersObj(id)
	return nil
}

// ObjectDelete removes the object. Associations referencing it are not
// cascaded (TAO semantics).
func (s *Store) ObjectDelete(id ObjID) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.objects[id]; !ok {
		sh.mu.Unlock()
		return fmt.Errorf("object %d: %w", id, ErrNotFound)
	}
	delete(sh.objects, id)
	sh.mu.Unlock()
	s.stats.recordWrite(1)
	s.invalidateFollowersObj(id)
	return nil
}

// AssocAdd inserts (or updates) the association (id1, typ, id2) with the
// given timestamp and payload.
func (s *Store) AssocAdd(id1 ObjID, typ AssocType, id2 ObjID, t time.Time, data string) {
	sh := s.shardFor(id1)
	key := assocKey{id1, typ}
	sh.mu.Lock()
	lst := sh.assocs[key]
	// Replace if present.
	replaced := false
	for i := range lst {
		if lst[i].ID2 == id2 {
			lst[i].Time = t
			lst[i].Data = data
			sortAssocsDesc(lst)
			replaced = true
			break
		}
	}
	if !replaced {
		lst = append(lst, Assoc{ID1: id1, Type: typ, ID2: id2, Time: t, Data: data})
		sortAssocsDesc(lst)
		sh.assocs[key] = lst
	}
	sh.mu.Unlock()
	s.stats.recordWrite(1)
	s.invalidateFollowersAssoc(id1, typ)
}

// AssocDelete removes the association (id1, typ, id2).
func (s *Store) AssocDelete(id1 ObjID, typ AssocType, id2 ObjID) error {
	sh := s.shardFor(id1)
	key := assocKey{id1, typ}
	sh.mu.Lock()
	lst := sh.assocs[key]
	for i := range lst {
		if lst[i].ID2 == id2 {
			sh.assocs[key] = append(lst[:i], lst[i+1:]...)
			sh.mu.Unlock()
			s.stats.recordWrite(1)
			s.invalidateFollowersAssoc(id1, typ)
			return nil
		}
	}
	sh.mu.Unlock()
	return fmt.Errorf("assoc (%d,%s,%d): %w", id1, typ, id2, ErrNotFound)
}

// AssocGet returns the association (id1, typ, id2) — a point query.
func (s *Store) AssocGet(id1 ObjID, typ AssocType, id2 ObjID) (Assoc, error) {
	sh := s.shardFor(id1)
	key := assocKey{id1, typ}
	sh.mu.RLock()
	defer func() {
		sh.mu.RUnlock()
		s.stats.recordPoint(1)
	}()
	for _, a := range sh.assocs[key] {
		if a.ID2 == id2 {
			return a, nil
		}
	}
	return Assoc{}, fmt.Errorf("assoc (%d,%s,%d): %w", id1, typ, id2, ErrNotFound)
}

// AssocCount returns the size of the association list (id1, typ). Point
// query (TAO maintains counts inline).
func (s *Store) AssocCount(id1 ObjID, typ AssocType) int {
	sh := s.shardFor(id1)
	sh.mu.RLock()
	n := len(sh.assocs[assocKey{id1, typ}])
	sh.mu.RUnlock()
	s.stats.recordPoint(1)
	return n
}

// AssocRange returns up to limit associations from (id1, typ), newest
// first, skipping offset. This is a range query whose shard cost scales
// with the underlying list size (hot lists are index-partitioned).
func (s *Store) AssocRange(id1 ObjID, typ AssocType, offset, limit int) []Assoc {
	sh := s.shardFor(id1)
	key := assocKey{id1, typ}
	sh.mu.RLock()
	lst := sh.assocs[key]
	out := sliceRange(lst, offset, limit)
	total := len(lst)
	sh.mu.RUnlock()
	s.stats.recordRange(s.rangeShardCost(total))
	return out
}

// AssocTimeRange returns up to limit associations from (id1, typ) with
// Time in (since, until], newest first. A zero until means "now".
func (s *Store) AssocTimeRange(id1 ObjID, typ AssocType, since, until time.Time, limit int) []Assoc {
	if until.IsZero() {
		until = s.clock.Now()
	}
	sh := s.shardFor(id1)
	key := assocKey{id1, typ}
	sh.mu.RLock()
	lst := sh.assocs[key]
	out := make([]Assoc, 0, limit)
	for _, a := range lst { // newest first
		if !a.Time.After(since) {
			break
		}
		if a.Time.After(until) {
			continue
		}
		out = append(out, a)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	total := len(lst)
	sh.mu.RUnlock()
	s.stats.recordRange(s.rangeShardCost(total))
	return out
}

// Intersect returns the associations in (id1a, typA) whose ID2 also appears
// as ID2 in (id1b, typB) — e.g. "comments on video V by friends of U".
// Intersect queries are the most expensive TAO operation; their cost is the
// sum of both range costs (paper §1, §2).
func (s *Store) Intersect(id1a ObjID, typA AssocType, id1b ObjID, typB AssocType, limit int) []Assoc {
	shA := s.shardFor(id1a)
	shA.mu.RLock()
	la := append([]Assoc(nil), shA.assocs[assocKey{id1a, typA}]...)
	shA.mu.RUnlock()

	shB := s.shardFor(id1b)
	shB.mu.RLock()
	lb := shB.assocs[assocKey{id1b, typB}]
	set := make(map[ObjID]bool, len(lb))
	for _, a := range lb {
		set[a.ID2] = true
	}
	lbLen := len(lb)
	shB.mu.RUnlock()

	out := make([]Assoc, 0, limit)
	for _, a := range la {
		if set[a.ID2] {
			out = append(out, a)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	s.stats.recordIntersect(s.rangeShardCost(len(la)) + s.rangeShardCost(lbLen))
	return out
}

// rangeShardCost models index partitioning: a list of length n spans
// ceil(n/IndexShardCapacity) shards, minimum 1.
func (s *Store) rangeShardCost(n int) int {
	c := (n + s.cfg.IndexShardCapacity - 1) / s.cfg.IndexShardCapacity
	if c < 1 {
		c = 1
	}
	return c
}

func sliceRange(lst []Assoc, offset, limit int) []Assoc {
	if offset < 0 {
		offset = 0
	}
	if offset >= len(lst) {
		return nil
	}
	end := len(lst)
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	out := make([]Assoc, end-offset)
	copy(out, lst[offset:end])
	return out
}

func sortAssocsDesc(lst []Assoc) {
	sort.SliceStable(lst, func(i, j int) bool { return lst[i].Time.After(lst[j].Time) })
}

func cloneData(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Stats aggregates query accounting for a Store: the experiment harness
// uses it to compare polling (range/intersect heavy) against Bladerunner
// (point heavy). Safe for concurrent use.
type Stats struct {
	PointQueries     metrics.Counter
	RangeQueries     metrics.Counter
	IntersectQueries metrics.Counter
	Writes           metrics.Counter
	// ShardAccesses counts total shard touches across all queries: the
	// paper's IOPS proxy.
	ShardAccesses metrics.Counter
}

// NewStats returns zeroed Stats.
func NewStats() *Stats { return &Stats{} }

func (st *Stats) recordPoint(shards int) {
	st.PointQueries.Inc()
	st.ShardAccesses.Add(int64(shards))
}

func (st *Stats) recordRange(shards int) {
	st.RangeQueries.Inc()
	st.ShardAccesses.Add(int64(shards))
}

func (st *Stats) recordIntersect(shards int) {
	st.IntersectQueries.Inc()
	st.ShardAccesses.Add(int64(shards))
}

func (st *Stats) recordWrite(shards int) {
	st.Writes.Inc()
	st.ShardAccesses.Add(int64(shards))
}

// Reads returns the total number of read queries.
func (st *Stats) Reads() int64 {
	return st.PointQueries.Value() + st.RangeQueries.Value() + st.IntersectQueries.Value()
}
