// Package ctrl is the control protocol between Bladerunner tier processes:
// a small newline-delimited JSON RPC carried over any io.ReadWriteCloser
// (in production a TCP connection from edge.TCPNetwork). It exists so the
// multi-process deployment (cmd/brnode) can cut the in-process cluster at
// its interface seams — brass.PubSub, brass.Backend, device.Backend — and
// replace a function call with a socket without the tiers noticing.
//
// The protocol has three message shapes on one duplex connection:
//
//	request:      {"id":1,"method":"pylon.subscribe","params":{...}}
//	response:     {"id":1,"result":{...}}  or  {"id":1,"error":{"code":"...","msg":"..."}}
//	notification: {"method":"pylon.deliver","params":{...}}   (no id, no reply)
//
// Both ends may call and serve on the same Conn; ids are correlated per
// direction (each side numbers its own requests). Incoming requests and
// notifications are dispatched in arrival order on a single dispatcher
// goroutine, never on the read loop — a handler that issues a Call back
// over the same Conn must not deadlock against the loop that would
// deliver its response. Event delivery (pylon.deliver) therefore stays
// ordered per connection, matching Pylon's per-topic ordering contract.
//
// BURST is deliberately not reused here: BURST frames are per-stream
// device traffic with flow control and shedding; control traffic wants
// strict request/response semantics and zero shedding. The two protocols
// share sockets' fate, nothing else.
package ctrl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrConnClosed is wrapped by calls that fail because the connection is
// (or just became) closed.
var ErrConnClosed = errors.New("ctrl: connection closed")

// Handler serves one method. The returned value is marshaled as the
// result; a returned error is mapped to a wire error (sentinel identities
// surviving via codeFor/errFor).
type Handler func(params json.RawMessage) (any, error)

// envelope is the single wire shape; field presence distinguishes the
// three message kinds (ids start at 1, so ID==0 means "absent").
type envelope struct {
	ID     uint64          `json:"id,omitempty"`
	Method string          `json:"method,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *wireError      `json:"error,omitempty"`
}

// wireError carries an error across the wire. Code preserves sentinel
// identity (see errors.go); Msg is the human-readable rendering.
type wireError struct {
	Code string `json:"code,omitempty"`
	Msg  string `json:"msg"`
}

// Conn is one control connection. Safe for concurrent use.
type Conn struct {
	name string
	rwc  io.ReadWriteCloser

	wmu sync.Mutex
	enc *json.Encoder

	mu       sync.Mutex
	handlers map[string]Handler
	pending  map[uint64]chan envelope
	nextID   uint64
	closed   bool
	err      error
	onClose  func(error)

	// Incoming requests/notifications queue here (unbounded, so the read
	// loop never blocks behind a slow handler) and drain in order on the
	// dispatcher goroutine.
	qmu   sync.Mutex
	qcond *sync.Cond
	queue []envelope
	qdone bool

	wg sync.WaitGroup
}

// NewConn wraps rwc in a control connection. name labels errors. onClose,
// when non-nil, fires once when the connection dies (nil error for a local
// Close). The read and dispatch loops do not run until Start — register
// every handler first, so a fast peer's first request cannot race
// registration.
func NewConn(name string, rwc io.ReadWriteCloser, onClose func(error)) *Conn {
	c := &Conn{
		name:     name,
		rwc:      rwc,
		enc:      json.NewEncoder(rwc),
		handlers: make(map[string]Handler),
		pending:  make(map[uint64]chan envelope),
		onClose:  onClose,
	}
	c.qcond = sync.NewCond(&c.qmu)
	return c
}

// Start launches the read and dispatch loops. Call exactly once, after
// handler registration.
func (c *Conn) Start() *Conn {
	c.wg.Add(2)
	go c.readLoop()
	go c.dispatchLoop()
	return c
}

// Handle registers fn for method. Registration after traffic has started
// is racy by design choice: register every handler before the peer can
// send (i.e. immediately after NewConn on the accepting side).
func (c *Conn) Handle(method string, fn Handler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handlers[method] = fn
}

// Call sends a request and blocks for the matching response. result, when
// non-nil, receives the unmarshaled result payload. Wire errors come back
// with sentinel identity restored where the code maps to one.
func (c *Conn) Call(method string, params, result any) error {
	raw, err := marshalParams(params)
	if err != nil {
		return fmt.Errorf("ctrl %s: marshal %s params: %w", c.name, method, err)
	}
	ch := make(chan envelope, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return c.closedErr(method, err)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.send(envelope{ID: id, Method: method, Params: raw}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("ctrl %s: send %s: %w", c.name, method, err)
	}
	env, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return c.closedErr(method, err)
	}
	if env.Error != nil {
		return env.Error.unwire(c.name, method)
	}
	if result != nil && len(env.Result) > 0 {
		if err := json.Unmarshal(env.Result, result); err != nil {
			return fmt.Errorf("ctrl %s: unmarshal %s result: %w", c.name, method, err)
		}
	}
	return nil
}

// Notify sends a fire-and-forget notification (no id, no response).
func (c *Conn) Notify(method string, params any) error {
	raw, err := marshalParams(params)
	if err != nil {
		return fmt.Errorf("ctrl %s: marshal %s params: %w", c.name, method, err)
	}
	if err := c.send(envelope{Method: method, Params: raw}); err != nil {
		return fmt.Errorf("ctrl %s: notify %s: %w", c.name, method, err)
	}
	return nil
}

// Close tears the connection down and fails every in-flight Call.
func (c *Conn) Close() error {
	c.closeWith(nil)
	c.wg.Wait()
	return nil
}

// Err returns the error that closed the connection (nil before close or
// after a local Close).
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Conn) closedErr(method string, cause error) error {
	if cause != nil {
		return fmt.Errorf("ctrl %s: call %s: %w (%w)", c.name, method, ErrConnClosed, cause)
	}
	return fmt.Errorf("ctrl %s: call %s: %w", c.name, method, ErrConnClosed)
}

func marshalParams(params any) (json.RawMessage, error) {
	if params == nil {
		return nil, nil
	}
	return json.Marshal(params)
}

// send serializes one envelope under the write lock. Encoder appends the
// newline separating messages.
func (c *Conn) send(env envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrConnClosed
	}
	if err := c.enc.Encode(env); err != nil {
		c.closeWith(err)
		return err
	}
	return nil
}

// closeWith performs the one-time teardown: marks closed, fails pending
// calls, wakes the dispatcher, closes the transport, fires onClose.
func (c *Conn) closeWith(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	pend := c.pending
	c.pending = make(map[uint64]chan envelope)
	onClose := c.onClose
	c.mu.Unlock()

	for _, ch := range pend {
		close(ch)
	}
	c.qmu.Lock()
	c.qdone = true
	c.qcond.Broadcast()
	c.qmu.Unlock()
	_ = c.rwc.Close()
	if onClose != nil {
		onClose(err)
	}
}

// readLoop decodes envelopes: responses resolve pending calls directly;
// requests and notifications enqueue for the dispatcher.
func (c *Conn) readLoop() {
	defer c.wg.Done()
	dec := json.NewDecoder(c.rwc)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.EOF // clean peer close keeps its identity
			}
			c.closeWith(err)
			return
		}
		if env.Method == "" { // response
			c.mu.Lock()
			ch, ok := c.pending[env.ID]
			delete(c.pending, env.ID)
			c.mu.Unlock()
			if ok {
				ch <- env
			}
			continue
		}
		c.qmu.Lock()
		if c.qdone {
			c.qmu.Unlock()
			return
		}
		c.queue = append(c.queue, env)
		c.qcond.Signal()
		c.qmu.Unlock()
	}
}

// dispatchLoop drains the incoming queue in order, invoking handlers and
// writing responses for requests. It exits when the connection closes and
// the queue has drained.
func (c *Conn) dispatchLoop() {
	defer c.wg.Done()
	for {
		c.qmu.Lock()
		for len(c.queue) == 0 && !c.qdone {
			//brlint:allow(no-lock-across-block) the canonical Cond pattern: Wait atomically releases qmu while parked, so the read loop can still append; the queue must stay unbounded so the read loop never blocks behind a slow handler
			c.qcond.Wait()
		}
		if len(c.queue) == 0 && c.qdone {
			c.qmu.Unlock()
			return
		}
		env := c.queue[0]
		c.queue = c.queue[1:]
		c.qmu.Unlock()
		c.serve(env)
	}
}

// serve runs one request or notification through its handler.
func (c *Conn) serve(env envelope) {
	c.mu.Lock()
	fn := c.handlers[env.Method]
	c.mu.Unlock()
	if env.ID == 0 { // notification: no reply even on error
		if fn != nil {
			_, _ = fn(env.Params)
		}
		return
	}
	resp := envelope{ID: env.ID}
	switch {
	case fn == nil:
		resp.Error = &wireError{Code: codeUnknownMethod, Msg: fmt.Sprintf("ctrl: unknown method %q", env.Method)}
	default:
		out, err := fn(env.Params)
		if err != nil {
			resp.Error = wire(err)
		} else if out != nil {
			raw, merr := json.Marshal(out)
			if merr != nil {
				resp.Error = wire(fmt.Errorf("ctrl: marshal %s result: %w", env.Method, merr))
			} else {
				resp.Result = raw
			}
		}
	}
	_ = c.send(resp) // a dead conn fails every pending call anyway
}
