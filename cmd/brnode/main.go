// Command brnode runs ONE Bladerunner tier as a standalone OS process,
// speaking BURST (device/stream traffic) and the internal/ctrl JSON
// control protocol over real TCP. Four processes make a cluster:
//
//	brnode -role pylon -ctrl 127.0.0.1:7101
//	brnode -role was   -ctrl 127.0.0.1:7102 -pylon 127.0.0.1:7101
//	brnode -role brass -listen 127.0.0.1:7103 -ctrl 127.0.0.1:7104 \
//	       -pylon 127.0.0.1:7101 -was 127.0.0.1:7102
//	brnode -role pop   -listen 127.0.0.1:7105 -ctrl 127.0.0.1:7106 \
//	       -brass brass-us-east-0=127.0.0.1:7103
//
// or let the launcher wire the ports:
//
//	brnode -role all -procs 4
//
// which spawns one child per tier on loopback ephemeral ports, prints a
// CHILD line per process and CLUSTER-READY when the quickstart path is
// dialable, supervises the children (an unexpectedly dead child is
// restarted on its old addresses — the POP-kill failover path), and
// drains everything on SIGTERM.
//
// Every role serves the node admin methods (node.ping, node.drain) on its
// -ctrl listener; SIGTERM and node.drain share the same graceful-drain
// path: stop accepting, close live sessions cleanly (peers observe
// io.EOF, not an error), exit 0.
//
// Bootstrap config is static: flags, or -config pointing at a JSON file
// with the same keys (flags win). There is no dynamic membership — the
// paper's Bladerunner leans on Facebook's deployment machinery for that,
// and this reproduction keeps the seam honest by keeping bootstrap dumb.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
)

// bootstrap is the static per-process configuration. JSON keys match the
// flag names.
type bootstrap struct {
	Role   string `json:"role"`
	Region string `json:"region"`
	// Listen is the BURST listen address (brass, pop).
	Listen string `json:"listen"`
	// Ctrl is the control-protocol listen address (every role).
	Ctrl string `json:"ctrl"`
	// PylonAddr is the pylon tier's ctrl address (was, brass).
	PylonAddr string `json:"pylon"`
	// WASAddr is the WAS tier's ctrl address (brass).
	WASAddr string `json:"was"`
	// BrassAddrs maps brass target names to BURST addresses (pop), in
	// "name=addr,name=addr" flag form.
	BrassAddrs map[string]string `json:"brass"`
	// Hosts is the BRASS host count in this process.
	Hosts int `json:"hosts"`
	// Users sizes the synthetic social graph (was).
	Users int `json:"users"`
	// Seed seeds the social graph (was).
	Seed int64 `json:"seed"`
	// Durlog enables the durable per-topic log on BRASS hosts.
	Durlog bool `json:"durlog"`
	// Procs is the process count for -role all.
	Procs int `json:"procs"`
}

func defaults() bootstrap {
	return bootstrap{
		Region: "us-east",
		Listen: "127.0.0.1:0",
		Ctrl:   "127.0.0.1:0",
		Hosts:  1,
		Users:  100,
		Seed:   1,
		Durlog: true,
		Procs:  4,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("brnode: ")

	def := defaults()
	role := flag.String("role", "", "tier to run: pylon|was|brass|pop|all")
	region := flag.String("region", def.Region, "region label")
	listen := flag.String("listen", def.Listen, "BURST listen address (brass, pop)")
	ctrlAddr := flag.String("ctrl", def.Ctrl, "control-protocol listen address")
	pylonAddr := flag.String("pylon", "", "pylon ctrl address (was, brass)")
	wasAddr := flag.String("was", "", "WAS ctrl address (brass)")
	brassAddrs := flag.String("brass", "", "brass targets for a pop: name=addr,name=addr")
	hosts := flag.Int("hosts", def.Hosts, "BRASS hosts in this process")
	users := flag.Int("users", def.Users, "social graph size (was)")
	seed := flag.Int64("seed", def.Seed, "social graph seed (was)")
	durlog := flag.Bool("durlog", def.Durlog, "enable the BRASS durable log")
	procs := flag.Int("procs", def.Procs, "process count for -role all")
	confPath := flag.String("config", "", "JSON bootstrap config file (flags override)")
	flag.Parse()

	cfg := def
	if *confPath != "" {
		raw, err := os.ReadFile(*confPath)
		if err != nil {
			log.Fatalf("read -config: %v", err)
		}
		if err := json.Unmarshal(raw, &cfg); err != nil {
			log.Fatalf("parse -config %s: %v", *confPath, err)
		}
	}
	// Flags the user actually set override the file.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	override := func(name string, apply func()) {
		if set[name] || *confPath == "" {
			apply()
		}
	}
	override("role", func() {
		if *role != "" {
			cfg.Role = *role
		}
	})
	override("region", func() { cfg.Region = *region })
	override("listen", func() { cfg.Listen = *listen })
	override("ctrl", func() { cfg.Ctrl = *ctrlAddr })
	override("pylon", func() {
		if *pylonAddr != "" {
			cfg.PylonAddr = *pylonAddr
		}
	})
	override("was", func() {
		if *wasAddr != "" {
			cfg.WASAddr = *wasAddr
		}
	})
	override("brass", func() {
		if *brassAddrs != "" {
			m, err := parseTargets(*brassAddrs)
			if err != nil {
				log.Fatal(err)
			}
			cfg.BrassAddrs = m
		}
	})
	override("hosts", func() { cfg.Hosts = *hosts })
	override("users", func() { cfg.Users = *users })
	override("seed", func() { cfg.Seed = *seed })
	override("durlog", func() { cfg.Durlog = *durlog })
	override("procs", func() { cfg.Procs = *procs })

	var (
		n   *node
		err error
	)
	switch cfg.Role {
	case "pylon":
		n, err = runPylon(cfg)
	case "was":
		n, err = runWAS(cfg)
	case "brass":
		n, err = runBrass(cfg)
	case "pop":
		n, err = runPOP(cfg)
	case "all":
		err = runAll(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return
	default:
		log.Fatalf("unknown -role %q (want pylon|was|brass|pop|all)", cfg.Role)
	}
	if err != nil {
		log.Fatal(err)
	}

	// SIGTERM/SIGINT and a remote node.drain share one graceful path.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case <-sigc:
	case <-n.drained:
	}
	n.drain()
	log.Printf("role=%s drained", cfg.Role)
}

// parseTargets parses "name=addr,name=addr".
func parseTargets(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad -brass entry %q (want name=addr)", part)
		}
		out[name] = addr
	}
	return out, nil
}
