package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(t0)
	var got []int
	e.After(30*time.Millisecond, func() { got = append(got, 3) })
	e.After(10*time.Millisecond, func() { got = append(got, 1) })
	e.After(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != t0.Add(30*time.Millisecond) {
		t.Errorf("Now = %v, want %v", e.Now(), t0.Add(30*time.Millisecond))
	}
}

func TestEngineFIFOForEqualTimestamps(t *testing.T) {
	e := NewEngine(t0)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(t0)
	ran := false
	cancel := e.After(time.Second, func() { ran = true })
	cancel()
	cancel() // idempotent
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(t0)
	var times []time.Duration
	e.After(time.Second, func() {
		times = append(times, e.Now().Sub(t0))
		e.After(time.Second, func() {
			times = append(times, e.Now().Sub(t0))
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("nested times = %v", times)
	}
}

func TestEngineRunUntilLeavesFutureEvents(t *testing.T) {
	e := NewEngine(t0)
	var count int
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Minute, func() { count++ })
	}
	e.RunUntil(t0.Add(5 * time.Minute))
	if count != 5 {
		t.Errorf("events before deadline = %d, want 5", count)
	}
	if e.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", e.Pending())
	}
	if e.Now() != t0.Add(5*time.Minute) {
		t.Errorf("Now = %v", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Errorf("total events = %d, want 10", count)
	}
}

func TestEngineRunForAdvancesIdleClock(t *testing.T) {
	e := NewEngine(t0)
	e.RunFor(time.Hour)
	if e.Now() != t0.Add(time.Hour) {
		t.Errorf("Now = %v, want +1h", e.Now())
	}
}

func TestEnginePastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine(t0)
	var at time.Time
	e.At(t0.Add(-time.Hour), func() { at = e.Now() })
	e.Run()
	if at != t0 {
		t.Errorf("past event ran at %v, want %v", at, t0)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(t0)
		rng := rand.New(rand.NewSource(seed))
		var out []time.Duration
		var spawn func(depth int)
		spawn = func(depth int) {
			out = append(out, e.Now().Sub(t0))
			if depth < 3 {
				for i := 0; i < 3; i++ {
					d := time.Duration(rng.Intn(1000)) * time.Millisecond
					e.After(d, func() { spawn(depth + 1) })
				}
			}
		}
		e.After(0, func() { spawn(0) })
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(t0)
	if c.Now() != t0 {
		t.Fatal("initial time wrong")
	}
	c.Advance(90 * time.Second)
	if c.Now() != t0.Add(90*time.Second) {
		t.Errorf("Advance: Now = %v", c.Now())
	}
	c.Set(t0)
	if c.Now() != t0 {
		t.Errorf("Set: Now = %v", c.Now())
	}
}

func TestRealClockAfter(t *testing.T) {
	done := make(chan struct{})
	RealClock{}.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RealClock.After never fired")
	}
}

func TestRealClockCancel(t *testing.T) {
	fired := make(chan struct{}, 1)
	cancel := RealClock{}.After(50*time.Millisecond, func() { fired <- struct{}{} })
	cancel()
	select {
	case <-fired:
		t.Fatal("cancelled timer fired")
	case <-time.After(150 * time.Millisecond):
	}
}

// Property: events always execute in non-decreasing time order regardless of
// the insertion pattern.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(t0)
		var prev time.Time
		ok := true
		for _, d := range delays {
			e.After(time.Duration(d)*time.Millisecond, func() {
				if e.Now().Before(prev) {
					ok = false
				}
				prev = e.Now()
			})
		}
		e.Run()
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
