package megadevice

import (
	"testing"
	"time"

	"bladerunner/internal/metrics"
)

// BenchmarkApplyPayload measures the per-delta fan-in with a probe armed
// every iteration (the worst case: seq compare + store per stream, counter
// adds, probe claim, histogram observation). CI gates this at 0 allocs/op;
// the histogram reservoir is pre-warmed so algorithm R overwrites in place
// instead of growing the backing array mid-benchmark.
func BenchmarkApplyPayload(b *testing.B) {
	f, engine := virtualFleet(b, 64, 1)
	f.ConnectAll(0)
	engine.Run()
	f.mu.Lock()
	tr := f.trunkIDs[0]
	f.mu.Unlock()
	ts := tr.lookupSub(0)
	if ts == nil || len(ts.streams) != 64 {
		b.Fatal("benchmark fleet did not attach")
	}
	for i := 0; i < metrics.DefaultReservoirSize; i++ {
		f.ApplyLatency.Observe(time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ProbeArm(0, 1)
		f.applyPayload(ts, uint64(i+1))
	}
}
