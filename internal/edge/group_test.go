package edge

import (
	"io"
	"sync"
	"testing"
)

// TestSetDownGroupAtomic pins the half-cut regression: a grouped cut must
// never be observable partially applied. A toggler flips a 4-target group
// up and down with SetDownGroup while a checker snapshots the group's down
// flags with DownStates; any snapshot where some targets are down and
// others up is the racy per-target-loop behaviour the grouped primitive
// exists to eliminate.
func TestSetDownGroupAtomic(t *testing.T) {
	n := NewPipeNetwork()
	targets := []string{"brass-r-0", "brass-r-1", "proxy-r-0", "pop-r-0"}
	for _, target := range targets {
		n.Register(target, func(rwc io.ReadWriteCloser) { _ = rwc })
	}

	const iterations = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		down := true
		for i := 0; i < iterations; i++ {
			n.SetDownGroup(down, targets...)
			down = !down
		}
		close(stop)
	}()

	mixed := 0
	for {
		select {
		case <-stop:
			wg.Wait()
			if mixed > 0 {
				t.Fatalf("observed %d half-cut snapshots (some targets down, some up)", mixed)
			}
			return
		default:
		}
		states := n.DownStates(targets...)
		first := states[0]
		for _, s := range states[1:] {
			if s != first {
				mixed++
				break
			}
		}
	}
}

// TestSetDownGroupSeversAndHeals checks the group primitive keeps SetDown's
// semantics: taking a group down severs every established connection to its
// members and refuses new dials; healing the group restores dialability
// without resurrecting the severed connections.
func TestSetDownGroupSeversAndHeals(t *testing.T) {
	n := NewPipeNetwork()
	targets := []string{"a", "b"}
	for _, target := range targets {
		n.Register(target, func(rwc io.ReadWriteCloser) { _ = rwc })
	}
	conns := make([]io.ReadWriteCloser, 0, len(targets))
	for _, target := range targets {
		c, err := n.Dial(target)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}

	n.SetDownGroup(true, targets...)
	for i, c := range conns {
		if _, err := c.Write([]byte("x")); err == nil {
			t.Errorf("write on severed conn to %s succeeded", targets[i])
		}
	}
	for _, target := range targets {
		if _, err := n.Dial(target); err == nil {
			t.Errorf("dial to down target %s succeeded", target)
		}
	}

	n.SetDownGroup(false, targets...)
	for _, target := range targets {
		c, err := n.Dial(target)
		if err != nil {
			t.Errorf("dial to healed target %s: %v", target, err)
			continue
		}
		_ = c.Close()
	}
}
