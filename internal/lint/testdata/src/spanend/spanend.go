// Package spanend is a brlint fixture for the span-must-end rule: spans
// started with trace.Tracer.Start must reach Span.End on every return path.
// Ended spans, deferred Ends, and spans that escape (returned, passed on,
// assigned onward, or captured by a closure) must pass.
package spanend

import "bladerunner/internal/trace"

type Host struct {
	tr *trace.Tracer
}

func (h *Host) LeakOnFallOff(id trace.ID) {
	sp := h.tr.Start(id, trace.HopFetch, trace.HopDeliver) // want `span-must-end: span sp started here does not reach End`
	sp.Annotate("cache", "miss")
}

func (h *Host) LeakOnEarlyReturn(id trace.ID, fail bool) error {
	sp := h.tr.Start(id, trace.HopFlush, trace.HopFetch) // want `span-must-end: span sp started here does not reach End`
	if fail {
		return errEarly
	}
	sp.End()
	return nil
}

func (h *Host) EndedIsFine(id trace.ID) {
	sp := h.tr.Start(id, trace.HopPublish, "")
	sp.Annotate("topic", "/LVC/1")
	sp.End()
}

func (h *Host) DeferredEndIsFine(id trace.ID, fail bool) error {
	sp := h.tr.Start(id, trace.HopDeliver, trace.HopFanout)
	defer sp.End()
	if fail {
		return errEarly
	}
	return nil
}

func (h *Host) EndOnEachBranch(id trace.ID, hit bool) {
	sp := h.tr.Start(id, trace.HopFetch, trace.HopDeliver)
	if hit {
		sp.Annotate("cache", "hit")
		sp.End()
		return
	}
	sp.Annotate("cache", "miss")
	sp.End()
}

// ReturnedSpanEscapes: the caller takes over responsibility for ending it.
func (h *Host) ReturnedSpanEscapes(id trace.ID) trace.Span {
	sp := h.tr.Start(id, trace.HopRelay, trace.HopFlush)
	return sp
}

// PassedSpanEscapes: handing the span to another function releases it here.
func (h *Host) PassedSpanEscapes(id trace.ID) {
	sp := h.tr.Start(id, trace.HopApply, trace.HopFlush)
	finish(&sp)
}

// CapturedSpanEscapes: the closure owns the End now (the WAS publish path
// ends its root span inside the scheduled emit closure).
func (h *Host) CapturedSpanEscapes(id trace.ID, after func(func())) {
	sp := h.tr.Start(id, trace.HopPublish, "")
	after(func() { sp.End() })
}

// AllowedLeak: the suppression escape hatch absorbs the diagnostic.
func (h *Host) AllowedLeak(id trace.ID) {
	//brlint:allow(span-must-end) fixture: span intentionally kept open past return
	sp := h.tr.Start(id, trace.HopFanout, trace.HopPublish)
	sp.Annotate("topic", "/LVC/2")
}

func finish(sp *trace.Span) { sp.End() }

var errEarly = errorString("early")

type errorString string

func (e errorString) Error() string { return string(e) }
