// Command brload inspects the synthetic workload generators: it prints the
// sampled distributions (Table 1 area activity, Table 2 stream lifetimes,
// the diurnal curves) so their calibration can be eyeballed or piped into
// plotting tools.
//
// With -scenario it instead drives the megadevice harness: a million-device
// virtual fleet attached to a live in-process cluster, measuring delivery
// latency, churn throughput and per-device memory, and writing the report
// as JSON.
//
// Usage:
//
//	brload -what areas -n 1000000
//	brload -what lifetimes -n 100000
//	brload -what diurnal
//	brload -what graph -n 10000
//	brload -scenario diurnal -devices 1000000 -bench-json BENCH_8.json
//	brload -scenario storm -short
//	brload -scenario replay -devices 100000 -bench-json BENCH_9.json
//
// With -net tcp it instead drives a LIVE multi-process cluster (cmd/brnode)
// over real sockets, from this separate process: trunks dial the POP's
// BURST listener, publishes go through the WAS ctrl port:
//
//	brload -net tcp -connect 127.0.0.1:7105 -was-ctrl 127.0.0.1:7102 \
//	       -devices 500 -areas 20 -sim 15s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"time"

	"bladerunner/internal/megadevice"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/workload"
)

func main() {
	what := flag.String("what", "areas", "areas | lifetimes | diurnal | graph")
	n := flag.Int("n", 1_000_000, "sample count")
	seed := flag.Int64("seed", 1, "RNG seed")
	scenario := flag.String("scenario", "", "run a megadevice scenario instead: diurnal | storm | celebrity | replay")
	devices := flag.Int("devices", 1_000_000, "scenario: virtual device count")
	areas := flag.Int("areas", 1000, "scenario: topic/area count")
	zipfS := flag.Float64("zipf", 1.1, "scenario: area-popularity Zipf exponent")
	simDur := flag.Duration("sim", 0, "scenario: simulated span (0 = scenario default)")
	short := flag.Bool("short", false, "scenario: CI smoke sizing (fewer publishes/probes)")
	benchJSON := flag.String("bench-json", "", "scenario: write the report JSON to this file")
	maxBPD := flag.Float64("max-bytes-per-device", 0, "scenario: fail if bytes/device exceeds this (0 = no gate)")
	netMode := flag.String("net", "", "live mode transport: tcp (drive a running brnode cluster)")
	connect := flag.String("connect", "", "live mode: POP BURST address(es), comma-separated")
	wasCtrl := flag.String("was-ctrl", "", "live mode: WAS process ctrl address (publish path)")
	region := flag.String("region", "us-east", "live mode: cluster region")
	flag.Parse()

	if *netMode != "" {
		if *netMode != "tcp" {
			log.Fatalf("brload: unknown -net %q (want tcp)", *netMode)
		}
		runLive(strings.Split(*connect, ","), *wasCtrl, *region,
			*devices, *areas, *seed, *simDur, *benchJSON)
		return
	}

	if *scenario != "" {
		runScenario(*scenario, *devices, *areas, *zipfS, *seed, *simDur, *short, *benchJSON, *maxBPD)
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	switch *what {
	case "areas":
		showAreas(rng, *n)
	case "lifetimes":
		showLifetimes(rng, *n)
	case "diurnal":
		showDiurnal()
	case "graph":
		showGraph(*seed, *n)
	default:
		log.Fatalf("brload: unknown -what %q", *what)
	}
}

// runLive drives a live brnode cluster over TCP. The scenario-sized
// -devices/-areas defaults (a million virtual devices) make no sense
// against real sockets, so untouched defaults fall back to live-mode
// sizing (200 devices, 20 areas).
func runLive(pops []string, wasCtrl, region string, devices, areas int,
	seed int64, simDur time.Duration, benchJSON string) {
	if devices == 1_000_000 {
		devices = 0
	}
	if areas == 1000 {
		areas = 0
	}
	var clean []string
	for _, p := range pops {
		if p = strings.TrimSpace(p); p != "" {
			clean = append(clean, p)
		}
	}
	rep, err := megadevice.RunLive(megadevice.LiveOptions{
		Pops:     clean,
		WASAddr:  wasCtrl,
		Region:   region,
		Devices:  devices,
		Areas:    areas,
		Seed:     seed,
		Duration: simDur,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Fatalf("brload: %v", err)
	}
	rep.GitDescribe = gitDescribe()
	fmt.Printf("live: %d devices over %d POP(s), %.1fs wall\n",
		rep.Devices, len(clean), rep.WallSecs)
	fmt.Printf("  connects=%d drops=%d dial_failures=%d trunk_deaths=%d\n",
		rep.Connects, rep.Drops, rep.DialFailures, rep.TrunkDeaths)
	fmt.Printf("  publishes=%d deltas=%d applied=%d probes=%d misses=%d\n",
		rep.Publishes, rep.Deltas, rep.Applied, rep.Probes, rep.ProbeMisses)
	fmt.Printf("  over-the-wire delivery latency p50=%v p99=%v (n=%d)\n",
		rep.LatencyNS.P50, rep.LatencyNS.P99, rep.LatencyNS.Count)
	if benchJSON != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("brload: marshal report: %v", err)
		}
		if err := os.WriteFile(benchJSON, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("brload: %v", err)
		}
		fmt.Printf("report written to %s\n", benchJSON)
	}
}

func runScenario(name string, devices, areas int, zipfS float64, seed int64,
	simDur time.Duration, short bool, benchJSON string, maxBPD float64) {
	rep, err := megadevice.Run(megadevice.Options{
		Scenario:    name,
		Devices:     devices,
		Areas:       areas,
		ZipfS:       zipfS,
		Seed:        seed,
		SimDuration: simDur,
		Short:       short,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatalf("brload: %v", err)
	}
	rep.GitDescribe = gitDescribe()
	fmt.Printf("scenario %s: %d devices, %.0fs simulated in %.1fs wall (%.0f events/sec)\n",
		rep.Scenario, rep.Devices, rep.SimSeconds, rep.WallSecs, rep.EventsPerSec)
	fmt.Printf("  connects=%d drops=%d dial_failures=%d trunk_deaths=%d\n",
		rep.Connects, rep.Drops, rep.DialFailures, rep.TrunkDeaths)
	fmt.Printf("  publishes=%d deltas=%d applied=%d probes=%d misses=%d\n",
		rep.Publishes, rep.Deltas, rep.Applied, rep.Probes, rep.ProbeMisses)
	fmt.Printf("  delivery latency p50=%v p99=%v (n=%d)\n",
		rep.LatencyNS.P50, rep.LatencyNS.P99, rep.LatencyNS.Count)
	fmt.Printf("  bytes/device=%.1f\n", rep.BytesPerDevice)
	if rep.ReattachMinutes > 0 {
		fmt.Printf("  storm reattach: %.0f simulated minutes\n", rep.ReattachMinutes)
	}
	if rep.FanoutPerSec > 0 {
		fmt.Printf("  celebrity fanout: %.0f applies/sec into %d subscribers\n",
			rep.FanoutPerSec, rep.HotTopicSubs)
	}
	if rep.Scenario == megadevice.ScenarioReplay {
		fmt.Printf("  replay: %d late joiners caught up %d deltas from the edge log (backlog=%d, log resumes=%d, point queries=%d)\n",
			rep.ReplayLateJoiners, rep.ReplayCatchUpApplied, rep.ReplayBacklog, rep.LogResumes, rep.ReplayPointQueries)
		fmt.Printf("  log: appends=%d catchup_deltas=%d expired=%d cursor_resumes=%d\n",
			rep.LogAppends, rep.LogCatchUpDeltas, rep.LogExpired, rep.CursorResumes)
	}
	if benchJSON != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("brload: marshal report: %v", err)
		}
		if err := os.WriteFile(benchJSON, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("brload: %v", err)
		}
		fmt.Printf("report written to %s\n", benchJSON)
	}
	if maxBPD > 0 && rep.BytesPerDevice > maxBPD {
		log.Fatalf("brload: bytes/device %.1f exceeds gate %.1f", rep.BytesPerDevice, maxBPD)
	}
}

// gitDescribe identifies the working tree ("unknown" outside a git
// checkout — e.g. a release tarball).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func showAreas(rng *rand.Rand, n int) {
	var zero, b10, b100, mid, b1M, b100M int
	var total int64
	for i := 0; i < n; i++ {
		u := workload.AreaUpdates(rng, workload.Table1Buckets)
		total += u
		switch {
		case u == 0:
			zero++
		case u < 10:
			b10++
		case u < 100:
			b100++
		case u <= 1_000_000:
			mid++
		case u <= 100_000_000:
			b1M++
		default:
			b100M++
		}
	}
	fmt.Printf("areas sampled: %d, total daily updates: %d\n", n, total)
	p := func(c int) float64 { return 100 * float64(c) / float64(n) }
	fmt.Printf("  0 updates:        %7.4f%%  (paper: 83%%)\n", p(zero))
	fmt.Printf("  1-9:              %7.4f%%  (paper: 16%%)\n", p(b10))
	fmt.Printf("  10-99:            %7.4f%%  (paper: 0.95%%)\n", p(b100))
	fmt.Printf("  100-1M:           %7.4f%%  (paper: elided)\n", p(mid))
	fmt.Printf("  1M-100M:          %7.4f%%  (paper: 0.049%%)\n", p(b1M))
	fmt.Printf("  >100M:            %7.4f%%  (paper: 0.0001%%)\n", p(b100M))
}

func showLifetimes(rng *rand.Rand, n int) {
	var b15, b1h, b24, more int
	for i := 0; i < n; i++ {
		lt := workload.StreamLifetime(rng, workload.Table2Buckets)
		switch {
		case lt < 15*time.Minute:
			b15++
		case lt < time.Hour:
			b1h++
		case lt < 24*time.Hour:
			b24++
		default:
			more++
		}
	}
	p := func(c int) float64 { return 100 * float64(c) / float64(n) }
	fmt.Printf("stream lifetimes (n=%d):\n", n)
	fmt.Printf("  <15min:  %6.2f%%  (paper: 45%%)\n", p(b15))
	fmt.Printf("  15m-1h:  %6.2f%%  (paper: 26%%)\n", p(b1h))
	fmt.Printf("  1h-24h:  %6.2f%%  (paper: 25%%)\n", p(b24))
	fmt.Printf("  24h+:    %6.2f%%  (paper: 4%%)\n", p(more))
}

func showDiurnal() {
	day := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	fmt.Println("hour, streams/user, subs/min, pubs/min, drops/min(M), reconnects/min(M)")
	for h := 0; h < 24; h++ {
		t := day.Add(time.Duration(h) * time.Hour)
		fmt.Printf("%02d:00, %5.2f, %5.3f, %5.3f, %6.1f, %5.2f\n",
			h,
			workload.ActiveStreamsPerUser.At(t),
			workload.SubscriptionsPerUserMinute.At(t),
			workload.PublicationsPerUserMinute.At(t),
			workload.EdgeConnectionDropsPerMinute.At(t)/1e6,
			workload.ProxyReconnectsPerMinute.At(t)/1e6)
	}
}

func showGraph(seed int64, n int) {
	cfg := socialgraph.DefaultConfig()
	cfg.Users = n
	cfg.Seed = seed
	g, err := socialgraph.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Degrees()
	fmt.Printf("graph: %d users, degree min/mean/max = %d/%.1f/%d\n",
		g.NumUsers(), st.Min, st.Mean, st.Max)
	// Degree histogram (log buckets).
	buckets := []int{0, 1, 10, 50, 100, 500, 1000}
	counts := make([]int, len(buckets))
	for id := socialgraph.UserID(1); id <= socialgraph.UserID(n); id++ {
		d := len(g.Friends(id))
		for i := len(buckets) - 1; i >= 0; i-- {
			if d >= buckets[i] {
				counts[i]++
				break
			}
		}
	}
	for i, b := range buckets {
		hi := "∞"
		if i+1 < len(buckets) {
			hi = fmt.Sprint(buckets[i+1] - 1)
		}
		fmt.Printf("  degree %4d-%4s: %d users\n", b, hi, counts[i])
	}
}
