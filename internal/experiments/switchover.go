package experiments

import (
	"fmt"
	"net"
	"strconv"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/baseline"
	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// Switchover reproduces the production LiveVideoComments switchover
// measurement (§1, §5): the same comment workload is served once by
// client-side polling and once by Bladerunner, against the real TAO, WAS,
// Pylon, and BRASS implementations, and the backend resource usage is
// compared. The paper reports a 10× reduction in LVC-related social-graph
// queries-per-second and WAS CPU load.
//
// Timers are scaled (milliseconds stand in for seconds) so the experiment
// runs in under a second of wall-clock time; the resource ratios are
// structural (range+point queries per poll vs point queries per delivered
// update) and unaffected by the scaling.
func Switchover(seed int64) Result {
	return SwitchoverOn(sim.RealClock{}, seed)
}

// SwitchoverOn runs the switchover measurement against an explicit
// Scheduler. Every wait in the experiment — the poller intervals, the
// settle windows, the wait for the BRASS host's Pylon registration — goes
// through sched, so the experiment stays deterministic when driven by the
// harness's virtual clock instead of the wall clock.
func SwitchoverOn(sched sim.Scheduler, seed int64) Result {
	const (
		viewers     = 30
		comments    = 40
		pollEvery   = 20 * time.Millisecond // stands in for the 2s production poll
		commentGap  = 2 * time.Millisecond
		settleAfter = 400 * time.Millisecond
	)

	// ---- Variant A: client-side polling ----
	pollEnv := newSwitchEnv(seed)
	pollers := make([]*baseline.ClientPoller, viewers)
	for i := range pollers {
		pollers[i] = &baseline.ClientPoller{
			WAS:      pollEnv.was,
			Viewer:   socialgraph.UserID(i + 1),
			Query:    "videoComments(videoID: 900, limit: 10)",
			Interval: pollEvery,
			Sched:    sched,
		}
		pollers[i].Start()
	}
	postComments(sched, pollEnv.was, comments, commentGap)
	sim.Sleep(sched, settleAfter)
	for _, p := range pollers {
		p.Stop()
	}
	pollStats := pollEnv.snapshot()

	// ---- Variant B: Bladerunner streams ----
	brEnv := newSwitchEnv(seed)
	host := brass.NewHost(brass.HostConfig{ID: "brass-x", Region: "us", StickyRouting: false},
		brEnv.pylon, brEnv.was, nil)
	defer host.Close()
	brEnv.suite.RegisterBRASS(host)

	clients := make([]*burst.Client, viewers)
	for i := range clients {
		a, b := net.Pipe()
		clients[i] = burst.NewClient(fmt.Sprintf("viewer-%d", i), a, nil)
		host.AcceptSession("sess", b)
		_, err := clients[i].Subscribe(burst.Subscribe{Header: burst.Header{
			burst.HdrApp:          apps.AppLiveComments,
			burst.HdrSubscription: "liveVideoComments(videoID: 900)",
			burst.HdrUser:         strconv.Itoa(i + 1),
		}})
		if err != nil {
			panic(err)
		}
		defer clients[i].Close()
	}
	// Wait for the host to register the topic with Pylon.
	brEnv.pylon.WaitForSubscriber(sched, apps.LVCTopic(900), 2*time.Second)
	postComments(sched, brEnv.was, comments, commentGap)
	sim.Sleep(sched, settleAfter)
	host.Quiesce()
	brStats := brEnv.snapshot()
	delivered := host.Deliveries.Value()

	// ---- Comparison ----
	r := Result{ID: "switchover", Title: "LVC polling vs Bladerunner: backend resource usage (live stack)"}
	ratio := func(a, b int64) string {
		if b == 0 {
			return "inf"
		}
		return fmt.Sprintf("%.1fx", float64(a)/float64(b))
	}
	r.AddRow("TAO read queries (poll / stream)",
		"10x fewer with Bladerunner",
		fmt.Sprintf("%d / %d = %s", pollStats.taoReads, brStats.taoReads,
			ratio(pollStats.taoReads, brStats.taoReads)), "")
	r.AddRow("TAO shard accesses (poll / stream)",
		"up to 5% global IOPS reduction at peak",
		fmt.Sprintf("%d / %d = %s", pollStats.shardAccesses, brStats.shardAccesses,
			ratio(pollStats.shardAccesses, brStats.shardAccesses)),
		"polls are range queries over many shards")
	r.AddRow("WAS CPU (modeled ms, poll / stream)",
		"~10x less for LVC",
		fmt.Sprintf("%d / %d = %s", pollStats.wasCPU, brStats.wasCPU,
			ratio(pollStats.wasCPU, brStats.wasCPU)), "")
	r.AddRow("range+intersect queries (poll / stream)", "-",
		fmt.Sprintf("%d / %d", pollStats.rangeQueries, brStats.rangeQueries),
		"Bladerunner's fetches are point queries")
	r.AddRow("empty poll fraction", "~80%", pct(emptyPollRate(pollers)),
		"polls returning no new data")
	r.AddRow("updates delivered (stream)", "-", fmt.Sprintf("%d", delivered),
		"pushes, rate-limited per viewer")
	return r
}

type switchEnv struct {
	tao   *tao.Store
	pylon *pylon.Service
	was   *was.Server
	suite *apps.Suite
}

type switchStats struct {
	taoReads      int64
	shardAccesses int64
	rangeQueries  int64
	wasCPU        int64
}

func newSwitchEnv(seed int64) *switchEnv {
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	pyl := pylon.MustNew(pylon.DefaultConfig(), kvstore.MustNewCluster(nodes, 3))
	store := tao.MustNewStore(tao.Config{Shards: 64, IndexShardCapacity: 8}, nil)
	graph := socialgraph.MustGenerate(socialgraph.Config{
		Users: 200, MeanFriends: 10, Seed: seed,
	})
	w := was.New(store, graph, pyl, nil)
	suite := apps.NewSuite(w)
	suite.LVC.RateLimit = 5 * time.Millisecond
	suite.LVC.RankBeforePublish = false
	suite.LVC.MinScore = 0.0
	return &switchEnv{tao: store, pylon: pyl, was: w, suite: suite}
}

func (e *switchEnv) snapshot() switchStats {
	return switchStats{
		taoReads:      e.tao.Stats().Reads(),
		shardAccesses: e.tao.Stats().ShardAccesses.Value(),
		rangeQueries:  e.tao.Stats().RangeQueries.Value() + e.tao.Stats().IntersectQueries.Value(),
		wasCPU:        e.was.CPUMillis.Value(),
	}
}

func postComments(sched sim.Scheduler, w *was.Server, n int, gap time.Duration) {
	for i := 0; i < n; i++ {
		author := socialgraph.UserID(100 + i%50)
		_, _ = w.Mutate(author, fmt.Sprintf(`postComment(videoID: 900, text: "live comment %d")`, i))
		sim.Sleep(sched, gap)
	}
}

func emptyPollRate(pollers []*baseline.ClientPoller) float64 {
	var polls, empty int64
	for _, p := range pollers {
		polls += p.Polls.Value()
		empty += p.EmptyPolls.Value()
	}
	if polls == 0 {
		return 0
	}
	return float64(empty) / float64(polls)
}
