package edge

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/burst"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// upstreamServer is a scripted BRASS-like endpoint for proxy tests.
type upstreamServer struct {
	name string

	mu       sync.Mutex
	streams  []*burst.ServerStream
	cancels  []burst.Cancel
	acks     []burst.Ack
	sessions []*burst.ServerSession
}

func (u *upstreamServer) accept(rwc io.ReadWriteCloser) {
	var ss *burst.ServerSession
	ss = burst.NewServerSession(u.name, rwc, burst.ServerHandlerFuncs{
		Subscribe: func(st *burst.ServerStream, sub burst.Subscribe) {
			u.mu.Lock()
			u.streams = append(u.streams, st)
			u.mu.Unlock()
		},
		Cancel: func(st *burst.ServerStream, c burst.Cancel) {
			u.mu.Lock()
			u.cancels = append(u.cancels, c)
			u.mu.Unlock()
		},
		Ack: func(st *burst.ServerStream, a burst.Ack) {
			u.mu.Lock()
			u.acks = append(u.acks, a)
			u.mu.Unlock()
		},
	})
	u.mu.Lock()
	u.sessions = append(u.sessions, ss)
	u.mu.Unlock()
}

func (u *upstreamServer) stream(i int) *burst.ServerStream {
	u.mu.Lock()
	defer u.mu.Unlock()
	if i >= len(u.streams) {
		return nil
	}
	return u.streams[i]
}

func (u *upstreamServer) streamCount() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.streams)
}

func (u *upstreamServer) killSessions() {
	u.mu.Lock()
	sessions := append([]*burst.ServerSession(nil), u.sessions...)
	u.sessions = nil
	u.mu.Unlock()
	for _, s := range sessions {
		_ = s.Close()
	}
}

type proxyEnv struct {
	net    *PipeNetwork
	proxy  *Proxy
	brassA *upstreamServer
	brassB *upstreamServer
	client *burst.Client
}

func newProxyEnv(t *testing.T) *proxyEnv {
	t.Helper()
	n := NewPipeNetwork()
	a := &upstreamServer{name: "brass-a"}
	b := &upstreamServer{name: "brass-b"}
	n.Register("brass-a", a.accept)
	n.Register("brass-b", b.accept)
	p := NewProxy("pop-1", n, StickyRouter{Fallback: NewRoundRobinRouter("brass-a", "brass-b")})
	n.Register("pop-1", p.Accept)
	rwc, err := n.Dial("pop-1")
	if err != nil {
		t.Fatal(err)
	}
	cli := burst.NewClient("device", rwc, nil)
	t.Cleanup(func() { cli.Close(); p.Close() })
	return &proxyEnv{net: n, proxy: p, brassA: a, brassB: b, client: cli}
}

func subscribeSticky(t *testing.T, env *proxyEnv, target string) *burst.ClientStream {
	t.Helper()
	st, err := env.client.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp:         "echo",
		burst.HdrTopic:       "/t/1",
		burst.HdrStickyBRASS: target,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestProxyRelaysSubscribeAndDeltas(t *testing.T) {
	env := newProxyEnv(t)
	st := subscribeSticky(t, env, "brass-a")
	waitFor(t, "upstream stream", func() bool { return env.brassA.stream(0) != nil })
	up := env.brassA.stream(0)
	if got := up.Request().Header[burst.HdrTopic]; got != "/t/1" {
		t.Errorf("upstream header topic = %q", got)
	}
	if err := up.SendBatch(burst.PayloadDelta(1, []byte("data"))); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-st.Events:
		if string(batch[0].Payload) != "data" {
			t.Errorf("payload = %q", batch[0].Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delta never relayed")
	}
	if env.proxy.StreamsRelayed.Value() != 1 || env.proxy.ActiveRelays() != 1 {
		t.Errorf("relayed=%d active=%d", env.proxy.StreamsRelayed.Value(), env.proxy.ActiveRelays())
	}
}

func TestProxyRelaysRewritesAndTracksState(t *testing.T) {
	env := newProxyEnv(t)
	st := subscribeSticky(t, env, "brass-a")
	waitFor(t, "upstream stream", func() bool { return env.brassA.stream(0) != nil })
	if err := env.brassA.stream(0).RewriteHeaderField("resume-seq", "41"); err != nil {
		t.Fatal(err)
	}
	// The device's stored request gets the rewrite through the proxy.
	waitFor(t, "device rewrite", func() bool {
		return st.Request().Header["resume-seq"] == "41"
	})
	if env.proxy.RewritesRelayed.Value() != 1 {
		t.Errorf("RewritesRelayed = %d", env.proxy.RewritesRelayed.Value())
	}
	// No app-visible event for the rewrite at the device.
	select {
	case b := <-st.Events:
		t.Errorf("rewrite leaked to device app: %+v", b)
	case <-time.After(30 * time.Millisecond):
	}
}

func TestProxyRepairsStreamAfterUpstreamFailure(t *testing.T) {
	env := newProxyEnv(t)
	st := subscribeSticky(t, env, "brass-a")
	waitFor(t, "upstream on A", func() bool { return env.brassA.stream(0) != nil })

	// BRASS rewrites a resume token; the repair must carry it.
	if err := env.brassA.stream(0).RewriteHeaderField("resume-seq", "7"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rewrite", func() bool { return st.Request().Header["resume-seq"] == "7" })

	// Kill brass-a: its sessions die and the target becomes undialable.
	env.net.SetDown("brass-a", true)
	env.brassA.killSessions()

	// Device sees degraded then rerouted, in order.
	var flows []burst.FlowCode
	deadline := time.After(5 * time.Second)
	for len(flows) < 2 {
		select {
		case batch := <-st.Events:
			for _, d := range batch {
				if d.Type == burst.DeltaFlowStatus {
					flows = append(flows, d.Flow)
				}
			}
		case <-deadline:
			t.Fatalf("flows so far: %v", flows)
		}
	}
	if flows[0] != burst.FlowDegraded || flows[1] != burst.FlowRerouted {
		t.Errorf("flow sequence = %v", flows)
	}
	// Stream landed on brass-b with the rewritten request. The sticky
	// header pointed at brass-a, but it is avoided after the failure.
	waitFor(t, "repaired on B", func() bool { return env.brassB.stream(0) != nil })
	req := env.brassB.stream(0).Request()
	if req.Header["resume-seq"] != "7" {
		t.Errorf("repair lost rewrite state: %+v", req.Header)
	}
	if env.proxy.Reconnects.Value() != 1 {
		t.Errorf("Reconnects = %d", env.proxy.Reconnects.Value())
	}
	// The repaired stream still works end to end.
	if err := env.brassB.stream(0).SendBatch(burst.PayloadDelta(8, []byte("post-repair"))); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-st.Events:
		if string(batch[0].Payload) != "post-repair" {
			t.Errorf("payload = %q", batch[0].Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery after repair")
	}
}

func TestProxyTerminatesWhenRepairImpossible(t *testing.T) {
	n := NewPipeNetwork()
	a := &upstreamServer{name: "brass-a"}
	n.Register("brass-a", a.accept)
	p := NewProxy("pop-1", n, StaticRouter("brass-a"))
	p.MaxRepairAttempts = 2
	n.Register("pop-1", p.Accept)
	rwc, _ := n.Dial("pop-1")
	cli := burst.NewClient("device", rwc, nil)
	defer cli.Close()
	st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{burst.HdrTopic: "/t"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "upstream", func() bool { return a.stream(0) != nil })
	n.SetDown("brass-a", true)
	a.killSessions()

	sawTermination := false
	deadline := time.After(5 * time.Second)
	for !sawTermination {
		select {
		case batch, ok := <-st.Events:
			if !ok {
				t.Fatal("stream closed without termination delta")
			}
			for _, d := range batch {
				if d.Type == burst.DeltaTermination {
					sawTermination = true
					if !strings.Contains(d.Reason, "unrecoverable") {
						t.Errorf("reason = %q", d.Reason)
					}
				}
			}
		case <-deadline:
			t.Fatal("no termination")
		}
	}
	if p.RepairFailures.Value() != 1 {
		t.Errorf("RepairFailures = %d", p.RepairFailures.Value())
	}
}

func TestProxyCancelPropagatesUpstream(t *testing.T) {
	env := newProxyEnv(t)
	st := subscribeSticky(t, env, "brass-a")
	waitFor(t, "upstream", func() bool { return env.brassA.stream(0) != nil })
	if err := st.Cancel("scrolled away"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "upstream cancel", func() bool {
		env.brassA.mu.Lock()
		defer env.brassA.mu.Unlock()
		return len(env.brassA.cancels) == 1
	})
	env.brassA.mu.Lock()
	reason := env.brassA.cancels[0].Reason
	env.brassA.mu.Unlock()
	if reason != "scrolled away" {
		t.Errorf("reason = %q", reason)
	}
	waitFor(t, "relay GC", func() bool { return env.proxy.ActiveRelays() == 0 })
}

func TestProxyAckPropagatesUpstream(t *testing.T) {
	env := newProxyEnv(t)
	st := subscribeSticky(t, env, "brass-a")
	waitFor(t, "upstream", func() bool { return env.brassA.stream(0) != nil })
	if err := st.Ack(23); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "ack", func() bool {
		env.brassA.mu.Lock()
		defer env.brassA.mu.Unlock()
		return len(env.brassA.acks) == 1 && env.brassA.acks[0].Seq == 23
	})
}

func TestProxyDeviceDropCancelsUpstreamAndGCs(t *testing.T) {
	env := newProxyEnv(t)
	subscribeSticky(t, env, "brass-a")
	waitFor(t, "upstream", func() bool { return env.brassA.stream(0) != nil })
	env.client.Close() // device vanishes
	waitFor(t, "upstream cancelled + GC", func() bool {
		env.brassA.mu.Lock()
		cancels := len(env.brassA.cancels)
		env.brassA.mu.Unlock()
		return cancels == 1 && env.proxy.ActiveRelays() == 0
	})
	if env.proxy.DownstreamDrops.Value() != 1 {
		t.Errorf("DownstreamDrops = %d", env.proxy.DownstreamDrops.Value())
	}
}

func TestProxyServerTerminationForwardedAndGCd(t *testing.T) {
	env := newProxyEnv(t)
	st := subscribeSticky(t, env, "brass-a")
	waitFor(t, "upstream", func() bool { return env.brassA.stream(0) != nil })
	if err := env.brassA.stream(0).Terminate("app says bye"); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-st.Events:
		if batch[0].Type != burst.DeltaTermination || batch[0].Reason != "app says bye" {
			t.Errorf("batch = %+v", batch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("termination not forwarded")
	}
	waitFor(t, "relay GC", func() bool { return env.proxy.ActiveRelays() == 0 })
}

func TestTwoHopChain(t *testing.T) {
	// device → POP → reverse proxy → brass.
	n := NewPipeNetwork()
	b := &upstreamServer{name: "brass-a"}
	n.Register("brass-a", b.accept)
	rp := NewProxy("rproxy-1", n, StaticRouter("brass-a"))
	n.Register("rproxy-1", rp.Accept)
	pop := NewProxy("pop-1", n, StaticRouter("rproxy-1"))
	n.Register("pop-1", pop.Accept)
	rwc, err := n.Dial("pop-1")
	if err != nil {
		t.Fatal(err)
	}
	cli := burst.NewClient("device", rwc, nil)
	defer cli.Close()

	st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{burst.HdrTopic: "/t/2"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "brass stream", func() bool { return b.stream(0) != nil })
	if err := b.stream(0).SendBatch(burst.PayloadDelta(1, []byte("through 2 hops"))); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-st.Events:
		if string(batch[0].Payload) != "through 2 hops" {
			t.Errorf("payload = %q", batch[0].Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery across 2 hops")
	}
	// Rewrites traverse both hops.
	if err := b.stream(0).RewriteHeaderField("k", "v"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "device rewrite via 2 hops", func() bool {
		return st.Request().Header["k"] == "v"
	})
}

func TestPipeNetwork(t *testing.T) {
	n := NewPipeNetwork()
	if _, err := n.Dial("ghost"); err == nil {
		t.Error("dial unknown target succeeded")
	}
	accepted := 0
	n.Register("x", func(io.ReadWriteCloser) { accepted++ })
	if _, err := n.Dial("x"); err != nil || accepted != 1 {
		t.Errorf("dial: err=%v accepted=%d", err, accepted)
	}
	if n.DialCount("x") != 1 {
		t.Errorf("DialCount = %d", n.DialCount("x"))
	}
	n.SetDown("x", true)
	if _, err := n.Dial("x"); err == nil {
		t.Error("dial down target succeeded")
	}
	n.SetDown("x", false)
	if _, err := n.Dial("x"); err != nil {
		t.Error("dial recovered target failed")
	}
	n.Unregister("x")
	if _, err := n.Dial("x"); err == nil {
		t.Error("dial unregistered target succeeded")
	}
	if got := len(n.Targets()); got != 0 {
		t.Errorf("Targets = %d", got)
	}
}

// TestSetDownSeversEstablishedConns: taking a target down must kill the
// sessions already running through it, not just reject new dials.
func TestSetDownSeversEstablishedConns(t *testing.T) {
	n := NewPipeNetwork()
	var server io.ReadWriteCloser
	n.Register("x", func(rwc io.ReadWriteCloser) { server = rwc })
	client, err := n.Dial("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := n.OpenConns("x"); got != 1 {
		t.Fatalf("OpenConns = %d, want 1", got)
	}

	n.SetDown("x", true)
	if _, err := client.Write([]byte("a")); err == nil {
		t.Error("write on severed client end succeeded")
	}
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Error("read on severed server end succeeded")
	}
	if got := n.OpenConns("x"); got != 0 {
		t.Errorf("OpenConns after SetDown = %d, want 0", got)
	}

	// Healing restores dialability; the old connection stays dead.
	n.SetDown("x", false)
	c2, err := n.Dial("x")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	if got := n.OpenConns("x"); got != 1 {
		t.Errorf("OpenConns after redial = %d, want 1", got)
	}
	_ = c2.Close()
}

// TestOrderlyCloseKeepsPeerEOF: closing one end of a tracked pipe must give
// the peer an orderly EOF, exactly like an untracked net.Pipe.
func TestOrderlyCloseKeepsPeerEOF(t *testing.T) {
	n := NewPipeNetwork()
	var server io.ReadWriteCloser
	n.Register("x", func(rwc io.ReadWriteCloser) { server = rwc })
	client, err := n.Dial("x")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := server.Read(make([]byte, 1))
		done <- err
	}()
	_ = client.Close()
	if err := <-done; err != io.EOF {
		t.Errorf("peer read after orderly close = %v, want io.EOF", err)
	}
	// The pair unregisters once both ends are closed.
	_ = server.Close()
	if got := n.OpenConns("x"); got != 0 {
		t.Errorf("OpenConns after both ends closed = %d, want 0", got)
	}
}

func TestRouters(t *testing.T) {
	sub := burst.Subscribe{Header: burst.Header{burst.HdrTopic: "/t/1"}}

	if tgt, err := (StaticRouter("a")).Route(sub, nil); err != nil || tgt != "a" {
		t.Errorf("static: %v %v", tgt, err)
	}

	rr := NewRoundRobinRouter("a", "b")
	t1, _ := rr.Route(sub, nil)
	t2, _ := rr.Route(sub, nil)
	if t1 == t2 {
		t.Errorf("round robin returned %q twice", t1)
	}
	if tgt, err := rr.Route(sub, map[string]bool{"a": true}); err != nil || tgt != "b" {
		t.Errorf("rr avoid: %v %v", tgt, err)
	}
	if _, err := rr.Route(sub, map[string]bool{"a": true, "b": true}); err == nil {
		t.Error("rr with all avoided succeeded")
	}
	empty := NewRoundRobinRouter()
	if _, err := empty.Route(sub, nil); err == nil {
		t.Error("empty rr succeeded")
	}

	th := NewTopicHashRouter("a", "b", "c")
	x1, _ := th.Route(sub, nil)
	x2, _ := th.Route(sub, nil)
	if x1 != x2 {
		t.Error("topic hash not stable")
	}
	y, err := th.Route(sub, map[string]bool{x1: true})
	if err != nil || y == x1 {
		t.Errorf("topic hash avoid: %v %v", y, err)
	}

	sticky := StickyRouter{Fallback: StaticRouter("fallback")}
	s := burst.Subscribe{Header: burst.Header{burst.HdrStickyBRASS: "pinned"}}
	if tgt, _ := sticky.Route(s, nil); tgt != "pinned" {
		t.Errorf("sticky = %q", tgt)
	}
	if tgt, _ := sticky.Route(s, map[string]bool{"pinned": true}); tgt != "fallback" {
		t.Errorf("sticky avoid = %q", tgt)
	}
	if tgt, _ := sticky.Route(sub, nil); tgt != "fallback" {
		t.Errorf("sticky no header = %q", tgt)
	}
}

func TestRoundRobinSetTargets(t *testing.T) {
	rr := NewRoundRobinRouter("a")
	rr.SetTargets("x", "y")
	seen := map[string]bool{}
	sub := burst.Subscribe{}
	for i := 0; i < 4; i++ {
		tgt, err := rr.Route(sub, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[tgt] = true
	}
	if !seen["x"] || !seen["y"] || seen["a"] {
		t.Errorf("seen = %v", seen)
	}
}
