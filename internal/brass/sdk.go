package brass

import (
	"sort"
	"strconv"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/trace"
)

// This file contains the small SDK of building blocks shared by BRASS
// applications: a token-style rate limiter whose state can be persisted in
// stream headers (so it survives BRASS failover via rewrites, paper §3.5
// "Resumption"), and the per-viewer ranked buffer LiveVideoComments uses.

// RateLimiter enforces a minimum interval between deliveries on a stream.
// It is loop-owned (no locking). Its state round-trips through a header
// field so a replacement BRASS resumes where the failed one left off.
type RateLimiter struct {
	Interval time.Duration
	last     time.Time
}

// Allow reports whether a delivery may happen at time now, consuming the
// slot when it returns true. Allow tolerates non-monotonic input: when now
// precedes the last delivery by more than one Interval — the clock
// retreated under it, e.g. state restored from a header written by a host
// with a skewed clock, or a virtual clock reset — the limiter re-anchors
// at now instead of denying until the original timeline catches up (which
// for a large Interval could stall the stream forever).
func (r *RateLimiter) Allow(now time.Time) bool {
	if r.Interval <= 0 {
		return true
	}
	if r.last.IsZero() || now.Sub(r.last) >= r.Interval || r.last.Sub(now) > r.Interval {
		r.last = now
		return true
	}
	return false
}

// Next returns the earliest time a delivery will be allowed.
func (r *RateLimiter) Next() time.Time {
	if r.last.IsZero() {
		return time.Time{}
	}
	return r.last.Add(r.Interval)
}

// HeaderState encodes the limiter state for a rewrite.
func (r *RateLimiter) HeaderState() string {
	return strconv.FormatInt(r.last.UnixNano(), 10)
}

// RestoreHeaderState loads limiter state stored by a previous BRASS,
// clamping it to now: a failed host's header can carry a `last` timestamp
// arbitrarily far in the future (clock skew, corruption), and restoring it
// verbatim would silence the stream until that wall time. After a clamped
// restore the next delivery is at most one Interval away.
func (r *RateLimiter) RestoreHeaderState(s string, now time.Time) {
	if s == "" {
		return
	}
	if ns, err := strconv.ParseInt(s, 10, 64); err == nil && ns > 0 {
		last := time.Unix(0, ns)
		if last.After(now) {
			last = now
		}
		r.last = last
	}
}

// HdrRateLimiterState is the header key used to persist limiter state.
const HdrRateLimiterState = "rate-limiter-state"

// RankedItem is one buffered update candidate.
type RankedItem struct {
	Score   float64
	Time    time.Time
	Seq     uint64
	Payload []byte
	// Meta carries whatever the app needs at delivery time.
	Meta map[string]string
	// Trace preserves the originating event's trace context across the
	// buffer, so a rate-limited delivery still closes its spans against
	// the mutation that produced it.
	Trace trace.ID
}

// RankedBuffer keeps the top-K candidates by score, discarding entries
// older than TTL at Pop time. LiveVideoComments holds one per stream: new
// comments are inserted after per-viewer filtering, and the highest-ranked
// one is popped at the rate limit (paper §3.4).
type RankedBuffer struct {
	K   int
	TTL time.Duration

	items []RankedItem
}

// Len returns the number of buffered items.
func (b *RankedBuffer) Len() int { return len(b.items) }

// Add inserts a candidate, evicting the lowest-scored item if the buffer
// exceeds K.
func (b *RankedBuffer) Add(item RankedItem) {
	b.items = append(b.items, item)
	sort.SliceStable(b.items, func(i, j int) bool { return b.items[i].Score > b.items[j].Score })
	if b.K > 0 && len(b.items) > b.K {
		b.items = b.items[:b.K]
	}
}

// Pop removes and returns the highest-ranked item that is still fresh at
// time now. Stale items are discarded. ok is false if nothing remains.
func (b *RankedBuffer) Pop(now time.Time) (RankedItem, bool) {
	for len(b.items) > 0 {
		item := b.items[0]
		b.items = b.items[1:]
		if b.TTL > 0 && now.Sub(item.Time) > b.TTL {
			continue // comment went stale; irrelevant to the viewer now
		}
		return item, true
	}
	return RankedItem{}, false
}

// Expire drops all stale items without popping.
func (b *RankedBuffer) Expire(now time.Time) {
	if b.TTL <= 0 {
		return
	}
	kept := b.items[:0]
	for _, item := range b.items {
		if now.Sub(item.Time) <= b.TTL {
			kept = append(kept, item)
		}
	}
	b.items = kept
}

// BatchAccumulator groups per-stream updates for periodic batch pushes
// (ActiveStatus pushes friend-status maps in periodic batches, §3.4).
type BatchAccumulator struct {
	pending []burst.Delta
}

// Add queues a delta for the next flush.
func (a *BatchAccumulator) Add(d burst.Delta) { a.pending = append(a.pending, d) }

// Len returns the number of queued deltas.
func (a *BatchAccumulator) Len() int { return len(a.pending) }

// Flush sends everything queued as one atomic batch and clears the queue.
// A nil error with zero deltas means there was nothing to send.
func (a *BatchAccumulator) Flush(st *Stream) error {
	if len(a.pending) == 0 {
		return nil
	}
	deltas := a.pending
	a.pending = nil
	return st.Push(deltas...)
}
