package apps

import (
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
)

// This file implements the LiveVideoComments high-volume strategy of paper
// §3.4. The straightforward implementation (every comment to /LVC/videoID)
// does not scale to videos where a million comments arrive within seconds:
// every BRASS serving any viewer would receive every comment.
//
// For hot videos, the WAS switches strategy:
//
//   - comments scoring at or above HighRankCutoff are published to the
//     video's main topic /LVC/videoID (everyone should consider them);
//   - comments scoring below HotDiscardCutoff are discarded outright;
//   - the remaining comments are published to the per-poster topic
//     /LVC/videoID/uid, and each viewer's BRASS subscribes to
//     /LVC/videoID/f-uid for each *friend* of the viewer — so ordinary
//     comments only travel toward viewers who know the poster.
//
// Hotness is detected automatically from the comment arrival rate in a
// sliding window, and can be forced for tests and planned events.

// Hot-video tuning defaults.
const (
	// DefaultHotThreshold is the windowed comment count beyond which a
	// video switches to the high-volume strategy.
	DefaultHotThreshold = 1000
	// DefaultHotWindow is the rate-measurement window.
	DefaultHotWindow = 10 * time.Second
	// DefaultHighRankCutoff routes a comment to the main video topic.
	DefaultHighRankCutoff = 0.95
	// DefaultHotDiscardCutoff drops low-value comments at the WAS during
	// storms (nobody would ever see them anyway).
	DefaultHotDiscardCutoff = 0.3
)

// LVCUserTopic returns the per-poster topic used by the high-volume
// strategy: /LVC/videoID/uid.
func LVCUserTopic(videoID uint64, uid socialgraph.UserID) pylon.Topic {
	return pylon.Topic(fmt.Sprintf("/LVC/%d/%d", videoID, uid))
}

// hotTracker measures per-video comment rates and remembers which videos
// are operating in high-volume mode. Safe for concurrent use (the WAS
// serves mutations concurrently).
type hotTracker struct {
	mu        sync.Mutex
	threshold int
	window    time.Duration
	counts    map[uint64]*windowCount
	hot       map[uint64]bool
	forced    map[uint64]bool
}

type windowCount struct {
	start time.Time
	n     int
}

func newHotTracker(threshold int, window time.Duration) *hotTracker {
	return &hotTracker{
		threshold: threshold,
		window:    window,
		counts:    make(map[uint64]*windowCount),
		hot:       make(map[uint64]bool),
		forced:    make(map[uint64]bool),
	}
}

// observe records one comment on videoID at time now and returns whether
// the video is (now) hot.
func (h *hotTracker) observe(videoID uint64, now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.forced[videoID] {
		return true
	}
	wc := h.counts[videoID]
	if wc == nil || now.Sub(wc.start) > h.window {
		wc = &windowCount{start: now}
		h.counts[videoID] = wc
	}
	wc.n++
	if wc.n > h.threshold {
		h.hot[videoID] = true
	}
	return h.hot[videoID]
}

// isHot reports the current mode without recording a comment.
func (h *hotTracker) isHot(videoID uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.forced[videoID] || h.hot[videoID]
}

// force pins a video into (or out of) high-volume mode.
func (h *hotTracker) force(videoID uint64, hot bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.forced[videoID] = hot
	if !hot {
		delete(h.hot, videoID)
		delete(h.counts, videoID)
	}
}

// SetHotVideo pins a video into or out of the high-volume strategy
// (planned events, tests). Streams resolve their topics at open time, so
// switch the mode before viewers subscribe.
func (a *LiveVideoComments) SetHotVideo(videoID uint64, hot bool) {
	a.hot.force(videoID, hot)
}

// IsHotVideo reports whether videoID is in high-volume mode.
func (a *LiveVideoComments) IsHotVideo(videoID uint64) bool {
	return a.hot.isHot(videoID)
}

// ConfigureHotDetection replaces the automatic hot-video detector's
// threshold and window (planned large events tune these down; tests too).
func (a *LiveVideoComments) ConfigureHotDetection(threshold int, window time.Duration) {
	a.hot.mu.Lock()
	a.hot.threshold = threshold
	a.hot.window = window
	a.hot.mu.Unlock()
}
