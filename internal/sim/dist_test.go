package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func newRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func sampleMean(d Dist, n int) time.Duration {
	rng := newRNG()
	var total time.Duration
	for i := 0; i < n; i++ {
		total += d.Sample(rng)
	}
	return total / time.Duration(n)
}

func TestConstant(t *testing.T) {
	d := Constant{V: 42 * time.Millisecond}
	if got := d.Sample(newRNG()); got != 42*time.Millisecond {
		t.Errorf("Sample = %v", got)
	}
	if d.Mean() != 42*time.Millisecond {
		t.Errorf("Mean = %v", d.Mean())
	}
}

func TestUniformBoundsAndMean(t *testing.T) {
	d := Uniform{Lo: 10 * time.Millisecond, Hi: 20 * time.Millisecond}
	rng := newRNG()
	for i := 0; i < 10000; i++ {
		v := d.Sample(rng)
		if v < d.Lo || v >= d.Hi {
			t.Fatalf("sample %v out of [%v,%v)", v, d.Lo, d.Hi)
		}
	}
	m := sampleMean(d, 20000)
	if m < 14*time.Millisecond || m > 16*time.Millisecond {
		t.Errorf("sample mean %v far from 15ms", m)
	}
}

func TestUniformDegenerate(t *testing.T) {
	d := Uniform{Lo: 5 * time.Millisecond, Hi: 5 * time.Millisecond}
	if got := d.Sample(newRNG()); got != 5*time.Millisecond {
		t.Errorf("degenerate uniform = %v", got)
	}
}

func TestExponentialMeanAndFloor(t *testing.T) {
	d := Exponential{MeanVal: 100 * time.Millisecond, Min: 20 * time.Millisecond}
	rng := newRNG()
	for i := 0; i < 10000; i++ {
		if v := d.Sample(rng); v < d.Min {
			t.Fatalf("sample %v below floor %v", v, d.Min)
		}
	}
	m := sampleMean(d, 50000)
	if m < 95*time.Millisecond || m > 105*time.Millisecond {
		t.Errorf("sample mean %v far from 100ms", m)
	}
}

func TestLogNormalMedianRoughly(t *testing.T) {
	d := LogNormalFromMedian(50*time.Millisecond, 0.5)
	rng := newRNG()
	samples := make([]time.Duration, 20000)
	for i := range samples {
		samples[i] = d.Sample(rng)
	}
	med := Percentile(samples, 50)
	if med < 45*time.Millisecond || med > 55*time.Millisecond {
		t.Errorf("median %v far from 50ms", med)
	}
	// Analytic mean must exceed median for sigma > 0.
	if d.Mean() <= 50*time.Millisecond {
		t.Errorf("lognormal mean %v should exceed median", d.Mean())
	}
}

func TestParetoTailAndCap(t *testing.T) {
	d := Pareto{Xm: 10 * time.Millisecond, Alpha: 1.5, Cap: time.Second}
	rng := newRNG()
	var capped int
	for i := 0; i < 50000; i++ {
		v := d.Sample(rng)
		if v < d.Xm {
			t.Fatalf("sample %v below Xm", v)
		}
		if v > d.Cap {
			t.Fatalf("sample %v above cap", v)
		}
		if v == d.Cap {
			capped++
		}
	}
	if capped == 0 {
		t.Error("no samples hit the cap; tail too light for alpha=1.5")
	}
	// Mean for alpha>1: alpha*xm/(alpha-1) = 30ms.
	if d.Mean() != 30*time.Millisecond {
		t.Errorf("Mean = %v, want 30ms", d.Mean())
	}
}

func TestParetoAlphaLEOneMean(t *testing.T) {
	d := Pareto{Xm: 7 * time.Millisecond, Alpha: 0.9}
	if d.Mean() != 7*time.Millisecond {
		t.Errorf("Mean = %v, want Xm fallback", d.Mean())
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture([]Dist{Constant{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewMixture([]Dist{Constant{1}}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewMixture([]Dist{Constant{1}}, []float64{0}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestMixtureProportions(t *testing.T) {
	m := MustMixture(
		[]Dist{Constant{V: time.Millisecond}, Constant{V: time.Second}},
		[]float64{0.9, 0.1},
	)
	rng := newRNG()
	var slow int
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(rng) == time.Second {
			slow++
		}
	}
	frac := float64(slow) / n
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("slow fraction = %v, want ~0.1", frac)
	}
	wantMean := time.Duration(0.9*float64(time.Millisecond) + 0.1*float64(time.Second))
	if diff := m.Mean() - wantMean; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("Mean = %v, want %v", m.Mean(), wantMean)
	}
}

func TestZipfSkewsTowardLowRanks(t *testing.T) {
	z, err := NewZipf(newRNG(), 1.3, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("rank 0 (%d) not hotter than rank 10 (%d)", counts[0], counts[10])
	}
	if counts[0] <= counts[500] {
		t.Errorf("rank 0 (%d) not hotter than rank 500 (%d)", counts[0], counts[500])
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(newRNG(), 1.0, 1, 10); err == nil {
		t.Error("s=1 accepted")
	}
	if _, err := NewZipf(newRNG(), 2, 0.5, 10); err == nil {
		t.Error("v<1 accepted")
	}
	if _, err := NewZipf(newRNG(), 2, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestPercentile(t *testing.T) {
	samples := []time.Duration{5, 1, 3, 2, 4} // unsorted on purpose
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {200, 5},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	samples := []time.Duration{0, 100}
	if got := Percentile(samples, 75); got != 75 {
		t.Errorf("interpolated p75 = %v, want 75", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		prev := time.Duration(math.MinInt64)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(samples, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return Percentile(samples, 0) <= Percentile(samples, 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmpirical(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty empirical accepted")
	}
	samples := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	e, err := NewEmpirical(samples)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v", e.Mean())
	}
	rng := newRNG()
	seen := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		v := e.Sample(rng)
		seen[v] = true
		if v != samples[0] && v != samples[1] && v != samples[2] {
			t.Fatalf("sample %v not in population", v)
		}
	}
	if len(seen) != 3 {
		t.Errorf("only %d distinct values resampled", len(seen))
	}
	// Mutating the input must not affect the distribution.
	samples[0] = time.Hour
	for i := 0; i < 100; i++ {
		if e.Sample(rng) == time.Hour {
			t.Fatal("empirical aliased caller slice")
		}
	}
}
