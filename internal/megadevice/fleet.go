package megadevice

import (
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/edge"
	"bladerunner/internal/faults"
	"bladerunner/internal/intern"
	"bladerunner/internal/metrics"
	"bladerunner/internal/sim"
)

// Area describes one subscription target shared by the virtual devices
// assigned to it: the app, the subscription expression a trunk sends when
// it first needs the topic, and the concrete topic (for probe arming and
// diagnostics). User is the representative viewer id the trunk subscribes
// as; the apps the harness drives build payloads from the event alone, so
// one viewer stands in for every device sharing the stream.
type Area struct {
	App          string
	Subscription string
	Topic        string
	User         uint64
	// Cursor, when non-empty, is sent as HdrCursor on the shared
	// subscription: a durable-log resume token ("earliest" replays the
	// whole retained window — the late-joiner case). Shed markers on a
	// cursor-carrying stream repair via cursor resubscribe instead of the
	// legacy point-query resync.
	Cursor string
}

// Config parameterizes a Fleet.
type Config struct {
	// Devices is the number of virtual devices (dense ids 0..Devices-1).
	Devices int
	// StreamsPerDevice is the subscription count per device (default 1).
	StreamsPerDevice int
	// Areas are the subscription targets streams attach to.
	Areas []Area
	// StreamArea maps (device, stream ordinal) to an area index. nil
	// defaults to round-robin (dev+k) % len(Areas).
	StreamArea func(dev uint32, k int) uint32
	// POPs are the dialable edge targets, in rotation order.
	POPs []string
	// Dialer reaches the POPs. nil builds a fleet with VIRTUAL trunks
	// (always attach, no real session) — for unit tests and benchmarks
	// that inject deltas directly.
	Dialer edge.Dialer
	// Sched drives all transitions. With a *sim.Engine the caller owns
	// the pump (run the engine, call Service between bursts); with
	// sim.RealClock set Async so external events self-service.
	Sched sim.Scheduler
	// Clock supplies wall timestamps for delivery-latency probes
	// (default sim.RealClock{}); it is read on the apply hot path and
	// must be cheap.
	Clock sim.Clock
	// Async marks Sched as goroutine-safe: trunk-death notifications
	// schedule their own Service call instead of waiting for the driver.
	Async bool
	// Backoff paces redials, mirroring device.Device's policy (zero
	// fields default via faults.BackoffPolicy.Normalize semantics).
	Backoff faults.BackoffPolicy
	// Seed decorrelates the stateless per-device jitter.
	Seed int64
	// RecordDeliveries keeps the full per-stream delivered-seq trace
	// (equivalence tests only; costs per-delivery memory, excluded from
	// Footprint's per-device budget by design — see DeliveredSeqs).
	RecordDeliveries bool
	// OnShed, when set, is invoked (outside all fleet locks, from
	// Service) once per shed episode observed on a shared stream — the
	// point where a real device would issue its shed-then-resync point
	// query. The fleet counts episodes either way (Resyncs).
	OnShed func(area uint32, lastSeq uint64)
	// HomePOP, when set, pins each device's initial POP preference
	// (index into POPs) instead of the default 0. Scenario use: seed
	// devices and late joiners land on different POPs so the joiners
	// create fresh trunks whose first subscribe carries the area cursor.
	HomePOP func(dev uint32) int
}

// Fleet is a population of virtual devices multiplexed over per-POP trunk
// sessions. All state-machine transitions run under one mutex on the
// configured scheduler; the per-delta apply path touches only per-topic
// state and atomics so trunk read-loops never contend with transitions.
type Fleet struct {
	cfg    Config
	sched  sim.Scheduler
	clock  sim.Clock
	policy faults.BackoffPolicy

	topics   *intern.Table
	areaOf   []uint32 // topic handle -> area index
	topicOf  []uint32 // area index -> topic handle
	jitter   float64
	seedBase uint64

	mu       sync.Mutex
	tab      *tables
	heap     tranHeap
	trunks   map[string]*trunk // POP -> live trunk
	trunkIDs []*trunk          // trunk id -> trunk (never reused)
	closed   bool

	// Single armed scheduler timer covering the earliest pending
	// transition (rearmed when an earlier one is pushed).
	timerArmed  bool
	timerDue    int64
	timerCancel func()

	// External events (trunk deaths, shed episodes) arrive on trunk
	// read goroutines; they queue under their own mutex and drain in
	// Service, so a HandleClose firing mid-transition cannot deadlock.
	extMu      sync.Mutex
	extClosed  []*trunk
	extSheds   []shedEvent
	extResumes []*topicSub

	// probeWall holds, per area, the wall-clock nanos of an armed
	// delivery probe; the first applied delta claims it (Swap) and
	// records mutate->edge-apply latency.
	probeWall []paddedInt64

	// connected counts devices in StateConnected.
	connected int

	// rec, when RecordDeliveries is set, holds each stream's delivered
	// payload-seq trace (appended under the owning topicSub's mutex).
	rec [][]uint64

	// Metrics.
	Deltas        metrics.Counter // payload deltas decoded on trunks
	Applied       metrics.Counter // per-virtual-device delta applications
	FlowEvents    metrics.Counter
	Resyncs       metrics.Counter // shed episodes repaired by point-query resync
	CursorResumes metrics.Counter // shed episodes repaired by cursor resubscribe
	Rewrites      metrics.Counter
	Terminations  metrics.Counter
	Connects      metrics.Counter
	Drops         metrics.Counter
	DialFailures  metrics.Counter
	TrunkDeaths   metrics.Counter
	Transitions   metrics.Counter
	ApplyLatency  *metrics.Histogram
}

// paddedInt64 is an atomically accessed int64 padded to a cache line so
// probe claims on different areas never false-share.
type paddedInt64 struct {
	v int64
	_ [56]byte
}

type shedEvent struct {
	area    uint32
	lastSeq uint64
}

// New builds a fleet with every device Idle. Call ConnectAt (or
// ConnectAll) to bring devices online.
func New(cfg Config) (*Fleet, error) {
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("megadevice: need at least one device")
	}
	if len(cfg.Areas) == 0 {
		return nil, fmt.Errorf("megadevice: need at least one area")
	}
	if len(cfg.POPs) == 0 {
		return nil, fmt.Errorf("megadevice: need at least one POP")
	}
	if cfg.StreamsPerDevice <= 0 {
		cfg.StreamsPerDevice = 1
	}
	if cfg.Sched == nil {
		cfg.Sched = sim.RealClock{}
		cfg.Async = true
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.RealClock{}
	}
	if cfg.Backoff.Base <= 0 {
		cfg.Backoff.Base = 50 * time.Millisecond
	}
	if cfg.Backoff.Max <= 0 {
		cfg.Backoff.Max = 32 * cfg.Backoff.Base
	}
	jitter := cfg.Backoff.Jitter
	switch {
	case cfg.Backoff.NoJitter || jitter < 0:
		jitter = 0
	case jitter == 0:
		jitter = 0.5
	case jitter > 1:
		jitter = 1
	}

	f := &Fleet{
		cfg:          cfg,
		sched:        cfg.Sched,
		clock:        cfg.Clock,
		policy:       cfg.Backoff,
		topics:       intern.New(),
		jitter:       jitter,
		seedBase:     splitmix64(uint64(cfg.Seed) ^ 0xb1adeb1ade),
		trunks:       make(map[string]*trunk, len(cfg.POPs)),
		probeWall:    make([]paddedInt64, len(cfg.Areas)),
		ApplyLatency: metrics.NewHistogram(),
	}

	// Intern every area topic up front: handles are dense from 1 in area
	// order, and areaOf inverts them for the apply path.
	f.areaOf = make([]uint32, len(cfg.Areas)+1)
	f.topicOf = make([]uint32, len(cfg.Areas))
	for i, a := range cfg.Areas {
		h := f.topics.Intern(a.Topic)
		if int(h) >= len(f.areaOf) {
			return nil, fmt.Errorf("megadevice: duplicate area topic %q", a.Topic)
		}
		f.areaOf[h] = uint32(i)
		f.topicOf[i] = h
	}

	f.tab = newTables(cfg.Devices)
	if cfg.HomePOP != nil {
		for dev := 0; dev < cfg.Devices; dev++ {
			f.tab.popIdx[dev] = uint8(cfg.HomePOP(uint32(dev)) % len(cfg.POPs))
		}
	}
	assign := cfg.StreamArea
	if assign == nil {
		assign = func(dev uint32, k int) uint32 {
			return uint32((int(dev) + k) % len(cfg.Areas))
		}
	}
	for dev := 0; dev < cfg.Devices; dev++ {
		for k := 0; k < cfg.StreamsPerDevice; k++ {
			area := assign(uint32(dev), k)
			if int(area) >= len(cfg.Areas) {
				return nil, fmt.Errorf("megadevice: StreamArea(%d,%d) = %d out of range", dev, k, area)
			}
			f.tab.addStream(uint32(dev), f.topicOf[area])
		}
	}
	if cfg.RecordDeliveries {
		f.rec = make([][]uint64, len(f.tab.streamTopic))
	}
	return f, nil
}

// Devices returns the device count.
func (f *Fleet) Devices() int { return f.cfg.Devices }

// Streams returns the total stream count.
func (f *Fleet) Streams() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.tab.streamTopic)
}

// ConnectedCount returns the number of devices currently Connected.
func (f *Fleet) ConnectedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.connected
}

// State returns dev's current state.
func (f *Fleet) State(dev uint32) uint8 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tab.state[dev]
}

// Pending returns the number of queued transitions.
func (f *Fleet) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.heap)
}

// ConnectAt schedules dev to dial at absolute scheduler time at. A no-op
// for devices already Connected or already pending a dial.
func (f *Fleet) ConnectAt(dev uint32, at time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.tab.state[dev] != StateIdle {
		return
	}
	f.tab.state[dev] = StateBackoff
	f.tab.attempt[dev] = 0
	f.pushLocked(transition{due: at.UnixNano(), dev: dev, kind: kDial})
}

// ConnectAll schedules every Idle device to dial, spread uniformly over
// window starting at the scheduler's current time (0 window = all at
// once). Spreading models organic arrival and keeps the dial burst from
// being one giant same-timestamp batch.
func (f *Fleet) ConnectAll(window time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	base := f.sched.Now().UnixNano()
	n := int64(f.cfg.Devices)
	for dev := 0; dev < f.cfg.Devices; dev++ {
		if f.tab.state[dev] != StateIdle {
			continue
		}
		off := int64(0)
		if window > 0 {
			off = int64(window) * int64(dev) / n
		}
		f.tab.state[uint32(dev)] = StateBackoff
		f.tab.attempt[dev] = 0
		f.pushLocked(transition{due: base + off, dev: uint32(dev), kind: kDial})
	}
}

// DropAt schedules an involuntary network drop (the edge connection dies;
// the device reconnects through backoff, rotating POPs) at time at.
func (f *Fleet) DropAt(dev uint32, at time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.pushLocked(transition{due: at.UnixNano(), dev: dev, kind: kDrop})
}

// OffAt schedules a voluntary disconnect at time at: the device detaches
// and goes Idle (no redial) until a future ConnectAt.
func (f *Fleet) OffAt(dev uint32, at time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.pushLocked(transition{due: at.UnixNano(), dev: dev, kind: kOff})
}

// pushLocked queues a transition and (re)arms the scheduler timer.
func (f *Fleet) pushLocked(tr transition) {
	f.heap.push(tr)
	f.armLocked()
}

// armLocked points the single scheduler timer at the earliest pending
// transition. Idempotent; cheap when the armed timer is already earliest.
func (f *Fleet) armLocked() {
	if len(f.heap) == 0 || f.closed {
		return
	}
	due := f.heap[0].due
	if f.timerArmed && f.timerDue <= due {
		return
	}
	if f.timerCancel != nil {
		f.timerCancel()
	}
	d := time.Duration(due - f.sched.Now().UnixNano())
	if d < 0 {
		d = 0
	}
	f.timerArmed = true
	f.timerDue = due
	f.timerCancel = f.sched.After(d, f.onTimer)
}

// onTimer services every transition that has come due, then rearms.
func (f *Fleet) onTimer() {
	f.mu.Lock()
	f.timerArmed = false
	f.timerCancel = nil
	if f.closed {
		f.mu.Unlock()
		return
	}
	now := f.sched.Now().UnixNano()
	for len(f.heap) > 0 && f.heap[0].due <= now {
		tr := f.heap.pop()
		f.Transitions.Inc()
		switch tr.kind {
		case kDial:
			f.dialLocked(tr.dev)
		case kDrop:
			f.dropLocked(tr.dev)
		case kOff:
			f.offLocked(tr.dev)
		}
	}
	f.armLocked()
	f.mu.Unlock()
}

// dialLocked is the Backoff->Connected (or Backoff->Backoff on failure)
// transition: dial the device's current POP through the shared trunk and
// attach every stream. Mirrors device.Device.Connect + reconnect: a dial
// failure rotates the POP and grows the backoff.
func (f *Fleet) dialLocked(dev uint32) {
	if f.tab.state[dev] != StateBackoff {
		return // stale: device connected or went Idle since scheduling
	}
	pop := f.cfg.POPs[int(f.tab.popIdx[dev])%len(f.cfg.POPs)]
	t, err := f.trunkForLocked(pop)
	if err != nil {
		f.DialFailures.Inc()
		f.tab.popIdx[dev]++ // prefer an alternate POP next attempt
		if f.tab.attempt[dev] < 255 {
			f.tab.attempt[dev]++
		}
		f.pushLocked(transition{
			due:  f.sched.Now().UnixNano() + f.backoffDelay(dev, f.tab.attempt[dev]),
			dev:  dev,
			kind: kDial,
		})
		return
	}
	f.tab.state[dev] = StateConnected
	f.tab.attempt[dev] = 0
	f.tab.trunk[dev] = t.id
	f.connected++
	f.Connects.Inc()
	for sid := f.tab.firstStream[dev]; sid != noStream; sid = f.tab.streamNext[sid] {
		f.attachLocked(t, sid)
	}
}

// dropLocked is the Connected->Backoff transition for an edge-network
// drop: detach, rotate POP, schedule the redial through backoff — exactly
// device.Device.onSessionLost + reconnect, without the goroutines.
func (f *Fleet) dropLocked(dev uint32) {
	if f.tab.state[dev] != StateConnected {
		return
	}
	f.detachDeviceLocked(dev)
	f.Drops.Inc()
	f.tab.state[dev] = StateBackoff
	f.tab.popIdx[dev]++
	f.tab.attempt[dev] = 0
	f.pushLocked(transition{
		due:  f.sched.Now().UnixNano() + f.backoffDelay(dev, 0),
		dev:  dev,
		kind: kDial,
	})
}

// offLocked sends a device Idle. From Backoff the pending kDial becomes a
// stale no-op (it checks state); from Connected the streams detach.
func (f *Fleet) offLocked(dev uint32) {
	switch f.tab.state[dev] {
	case StateConnected:
		f.detachDeviceLocked(dev)
	case StateIdle:
		return
	}
	f.tab.state[dev] = StateIdle
	f.tab.attempt[dev] = 0
}

// detachDeviceLocked removes every stream of dev from its trunk's shared
// subscriptions and clears the trunk binding. The trunk's real streams
// stay open (warm) even at refcount zero: topics churn back quickly under
// diurnal load, and re-instantiating a BRASS stream per swing would
// thrash the very tier the harness is measuring.
func (f *Fleet) detachDeviceLocked(dev uint32) {
	tid := f.tab.trunk[dev]
	if tid == noTrunk {
		return
	}
	t := f.trunkIDs[tid]
	for sid := f.tab.firstStream[dev]; sid != noStream; sid = f.tab.streamNext[sid] {
		f.detachStreamLocked(t, sid)
	}
	f.tab.trunk[dev] = noTrunk
	if f.tab.state[dev] == StateConnected {
		f.connected--
	}
}

// attachLocked adds a stream to the (trunk, topic) shared subscription,
// creating (and really subscribing) it on first use.
func (f *Fleet) attachLocked(t *trunk, sid uint32) {
	area := f.areaOf[f.tab.streamTopic[sid]]
	ts := t.sub(area)
	ts.mu.Lock()
	f.tab.streamSubIdx[sid] = uint32(len(ts.streams))
	ts.streams = append(ts.streams, sid)
	ts.mu.Unlock()
}

// detachStreamLocked swap-removes a stream from its shared subscription
// in O(1) via the stored membership index.
func (f *Fleet) detachStreamLocked(t *trunk, sid uint32) {
	area := f.areaOf[f.tab.streamTopic[sid]]
	ts := t.lookupSub(area)
	if ts == nil {
		return
	}
	ts.mu.Lock()
	i := f.tab.streamSubIdx[sid]
	if i != noIndex && int(i) < len(ts.streams) && ts.streams[i] == sid {
		last := len(ts.streams) - 1
		moved := ts.streams[last]
		ts.streams[i] = moved
		f.tab.streamSubIdx[moved] = i
		ts.streams = ts.streams[:last]
	}
	ts.mu.Unlock()
	f.tab.streamSubIdx[sid] = noIndex
}

// backoffDelay computes the jittered exponential delay for a device's
// attempt without any per-device RNG state: delay = Base * Mult^attempt
// capped at Max, scaled by a [1-j, 1+j] factor hashed from
// (seed, device, attempt).
func (f *Fleet) backoffDelay(dev uint32, attempt uint8) int64 {
	mult := f.policy.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(f.policy.Base)
	for i := uint8(0); i < attempt; i++ {
		d *= mult
		if d >= float64(f.policy.Max) {
			d = float64(f.policy.Max)
			break
		}
	}
	if d > float64(f.policy.Max) {
		d = float64(f.policy.Max)
	}
	if f.jitter > 0 {
		h := splitmix64(f.seedBase ^ uint64(dev)<<8 ^ uint64(attempt))
		d *= jitterFrac(h, f.jitter)
	}
	return int64(d)
}

// Service drains externally queued events: trunk deaths (detach everyone
// attached, schedule their redials) and shed episodes (invoke OnShed).
// Engine-driven callers invoke it between engine bursts; Async fleets
// self-schedule it. Safe to call at any time.
func (f *Fleet) Service() {
	f.extMu.Lock()
	closed := f.extClosed
	sheds := f.extSheds
	resumes := f.extResumes
	f.extClosed = nil
	f.extSheds = nil
	f.extResumes = nil
	f.extMu.Unlock()

	if len(closed) > 0 {
		f.mu.Lock()
		for _, t := range closed {
			f.drainTrunkLocked(t)
		}
		f.armLocked()
		f.mu.Unlock()
	}
	if f.cfg.OnShed != nil {
		for _, s := range sheds {
			f.cfg.OnShed(s.area, s.lastSeq)
		}
	}
	if len(resumes) > 0 {
		// Coalesce markers that piled up on the same shared stream while
		// the queue waited for Service: one resubscribe repairs them all.
		seen := make(map[*topicSub]bool, len(resumes))
		for _, ts := range resumes {
			if seen[ts] {
				continue
			}
			seen[ts] = true
			ts.trunk.resumeSub(ts)
		}
	}
}

// drainTrunkLocked handles a dead trunk: every attached device goes to
// Backoff with a rotated POP and a jittered redial — the reconnect storm
// the storm scenario measures. Devices with several streams on the trunk
// transition once (guarded by state).
func (f *Fleet) drainTrunkLocked(t *trunk) {
	if f.trunks[t.pop] == t {
		delete(f.trunks, t.pop)
	}
	f.TrunkDeaths.Inc()
	now := f.sched.Now().UnixNano()
	t.mu.Lock()
	subs := t.subs
	t.subs = nil
	t.bySID = nil
	t.mu.Unlock()
	for _, ts := range subs {
		ts.mu.Lock()
		streams := ts.streams
		ts.streams = nil
		ts.mu.Unlock()
		for _, sid := range streams {
			f.tab.streamSubIdx[sid] = noIndex
			dev := f.tab.streamOwner[sid]
			if f.tab.state[dev] != StateConnected || f.tab.trunk[dev] != t.id {
				continue
			}
			f.tab.state[dev] = StateBackoff
			f.tab.trunk[dev] = noTrunk
			f.tab.popIdx[dev]++
			f.tab.attempt[dev] = 0
			f.connected--
			f.heap.push(transition{due: now + f.backoffDelay(dev, 0), dev: dev, kind: kDial})
		}
	}
}

// enqueueClosed records a trunk death from its read goroutine.
func (f *Fleet) enqueueClosed(t *trunk) {
	f.extMu.Lock()
	f.extClosed = append(f.extClosed, t)
	f.extMu.Unlock()
	if f.cfg.Async {
		f.sched.After(0, f.Service)
	}
}

// enqueueShed records a shed episode from a trunk read goroutine.
func (f *Fleet) enqueueShed(area uint32, lastSeq uint64) {
	f.extMu.Lock()
	f.extSheds = append(f.extSheds, shedEvent{area: area, lastSeq: lastSeq})
	f.extMu.Unlock()
	if f.cfg.Async {
		f.sched.After(0, f.Service)
	}
}

// enqueueResume records a cursor-repairable shed episode from a trunk
// read goroutine; Service coalesces per shared stream and resubscribes.
func (f *Fleet) enqueueResume(ts *topicSub) {
	f.extMu.Lock()
	f.extResumes = append(f.extResumes, ts)
	f.extMu.Unlock()
	if f.cfg.Async {
		f.sched.After(0, f.Service)
	}
}

// Close tears every trunk session down and waits for their read loops to
// finish, so table state is safe to inspect afterwards.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	if f.timerCancel != nil {
		f.timerCancel()
		f.timerCancel = nil
	}
	trunks := make([]*trunk, 0, len(f.trunks))
	for _, t := range f.trunks {
		trunks = append(trunks, t)
	}
	f.mu.Unlock()
	for _, t := range trunks {
		if t.sess != nil {
			_ = t.sess.Close()
			<-t.sess.Done()
		}
	}
}

// Footprint returns the bytes of model state backing the fleet: table
// columns, the transition heap, probe slots, and per-trunk shared-
// subscription bookkeeping (struct sizes plus membership arrays, with a
// conservative per-map-entry estimate). It excludes the optional
// RecordDeliveries trace (test instrumentation, unbounded by design) and
// the real cluster/runtime — the gate is about the MODEL's per-device
// cost.
func (f *Fleet) Footprint() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.tab.bytes()
	b += 16 * int64(cap(f.heap))
	b += 64 * int64(len(f.probeWall))
	const perTrunk = 256 // trunk struct, session bookkeeping
	const perSub = 96    // topicSub struct + two map entries
	for _, t := range f.trunkIDs {
		b += perTrunk
		t.mu.Lock()
		for _, ts := range t.subs {
			b += perSub
			ts.mu.Lock()
			b += 4 * int64(cap(ts.streams))
			ts.mu.Unlock()
		}
		t.mu.Unlock()
	}
	return b
}

// BytesPerDevice is Footprint divided by the device count.
func (f *Fleet) BytesPerDevice() float64 {
	return float64(f.Footprint()) / float64(f.cfg.Devices)
}
