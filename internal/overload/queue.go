package overload

import (
	"sync"

	"bladerunner/internal/metrics"
)

// Queue is a bounded multi-producer work queue with an explicit shed
// policy. When a Push would exceed the capacity, the OLDEST Data item is
// shed to make room — a live view prefers the freshest update over a stale
// backlog — and Control items are never shed: if the queue holds only
// Control items, the bound is exceeded rather than dropping one (control
// traffic is rare and small; losing it wedges streams).
//
// The queue tracks a shedding state with hysteresis: the first shed enters
// it (OnDegraded fires once), and it is left when the consumer drains the
// queue to half capacity (OnRecovered fires). Hops use the callbacks to
// emit FlowDegraded/FlowRecovered to every stream participant.
type Queue[T any] struct {
	// OnDegraded fires once when the queue enters shedding; OnRecovered
	// fires when it has drained back below half capacity. Both run on the
	// goroutine that triggered the transition, outside the queue lock —
	// they may push control deltas but must not call back into this
	// queue's Push/Pop synchronously with unbounded work. Set before use.
	OnDegraded  func()
	OnRecovered func()

	// ShedData counts Data items dropped by the shed policy.
	ShedData metrics.Counter
	// Degraded and Recovered count shedding-state transitions.
	Degraded  metrics.Counter
	Recovered metrics.Counter

	mu       sync.Mutex
	capacity int
	items    []queueItem[T]
	head     int
	shedding bool
	ready    chan struct{}
}

type queueItem[T any] struct {
	v     T
	class Class
}

// NewQueue builds a queue bounded at capacity items (capacity <= 0 means
// unbounded — no shedding ever happens).
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{capacity: capacity, ready: make(chan struct{}, 1)}
}

// Ready returns a channel that receives a token whenever items may be
// pending. Consumers select on it and then drain with Pop until ok is
// false.
func (q *Queue[T]) Ready() <-chan struct{} { return q.ready }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// Shedding reports whether the queue is currently in the shedding state.
func (q *Queue[T]) Shedding() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.shedding
}

// Push enqueues v. It never blocks and never fails: a full queue sheds its
// oldest Data item first (counted; the first shed of an episode fires
// OnDegraded). It returns the number of items shed (0 or 1).
func (q *Queue[T]) Push(v T, class Class) int {
	q.mu.Lock()
	shed := 0
	if q.capacity > 0 && len(q.items)-q.head >= q.capacity {
		// Shed the oldest Data item; Control is never dropped, even if
		// that means exceeding the bound.
		for i := q.head; i < len(q.items); i++ {
			if q.items[i].class == Data {
				copy(q.items[i:], q.items[i+1:])
				q.items[len(q.items)-1] = queueItem[T]{}
				q.items = q.items[:len(q.items)-1]
				shed = 1
				break
			}
		}
	}
	q.items = append(q.items, queueItem[T]{v: v, class: class})
	enteredShed := false
	if shed > 0 {
		q.ShedData.Inc()
		if !q.shedding {
			q.shedding = true
			enteredShed = true
			q.Degraded.Inc()
		}
	}
	q.mu.Unlock()

	if enteredShed && q.OnDegraded != nil {
		q.OnDegraded()
	}
	select {
	case q.ready <- struct{}{}:
	default:
		// A wake-up token is already pending; the consumer will drain
		// this item in the same pass. Nothing is lost, nothing to count.
	}
	return shed
}

// Pop dequeues the oldest item. ok is false when the queue is empty.
// Draining below half capacity leaves the shedding state (OnRecovered).
func (q *Queue[T]) Pop() (v T, class Class, ok bool) {
	q.mu.Lock()
	if q.head >= len(q.items) {
		q.items = q.items[:0]
		q.head = 0
		q.mu.Unlock()
		return v, Data, false
	}
	it := q.items[q.head]
	q.items[q.head] = queueItem[T]{}
	q.head++
	if q.head > len(q.items)/2 && q.head > 64 {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = queueItem[T]{}
		}
		q.items = q.items[:n]
		q.head = 0
	}
	leftShed := false
	if q.shedding && len(q.items)-q.head <= q.capacity/2 {
		q.shedding = false
		leftShed = true
		q.Recovered.Inc()
	}
	q.mu.Unlock()

	if leftShed && q.OnRecovered != nil {
		q.OnRecovered()
	}
	return it.v, it.class, true
}
