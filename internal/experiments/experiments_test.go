package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// parsePct extracts the numeric value of a "12.34%" measurement.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func row(t *testing.T, r Result, label string) Row {
	t.Helper()
	for _, row := range r.Rows {
		if row.Label == label {
			return row
		}
	}
	t.Fatalf("%s: no row %q", r.ID, label)
	return Row{}
}

func TestTable1MatchesPaper(t *testing.T) {
	r := Table1(1, 500_000)
	checks := []struct {
		label  string
		lo, hi float64
	}{
		{"areas with 0 updates", 82, 84},
		{"areas with <10 updates", 15, 17},
		{"areas with <100 updates", 0.8, 1.1},
		{"areas with >1M updates", 0.03, 0.07},
	}
	for _, c := range checks {
		got := parsePct(t, row(t, r, c.label).Measured)
		if got < c.lo || got > c.hi {
			t.Errorf("%s = %v%%, want [%v,%v]", c.label, got, c.lo, c.hi)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	r := Table2(1, 200_000)
	checks := map[string][2]float64{
		"<15 min":       {43, 47},
		"15 min - 1 hr": {24, 28},
		"1 hr - 24 hr":  {23, 27},
		"24 hr+":        {3, 5},
	}
	for label, bounds := range checks {
		got := parsePct(t, row(t, r, label).Measured)
		if got < bounds[0] || got > bounds[1] {
			t.Errorf("%s = %v%%, want [%v,%v]", label, got, bounds[0], bounds[1])
		}
	}
}

func TestFigure7ShapeMatchesPaper(t *testing.T) {
	n := 100_000
	if testing.Short() {
		n = 20_000
	}
	r := Figure7(1, n)
	zero := parsePct(t, row(t, r, "0 updates").Measured)
	b9 := parsePct(t, row(t, r, "1-9 updates").Measured)
	b99 := parsePct(t, row(t, r, "10-99 updates").Measured)
	b100 := parsePct(t, row(t, r, "100+ updates").Measured)
	// Tolerant bands around the paper's 75/19/5.5/0.6.
	if zero < 70 || zero > 82 {
		t.Errorf("zero = %v%%, want ~75%%", zero)
	}
	if b9 < 12 || b9 > 24 {
		t.Errorf("1-9 = %v%%, want ~19%%", b9)
	}
	if b99 < 3 || b99 > 8 {
		t.Errorf("10-99 = %v%%, want ~5.5%%", b99)
	}
	if b100 < 0.1 || b100 > 1.5 {
		t.Errorf("100+ = %v%%, want ~0.6%%", b100)
	}
	// The shape: monotonically decreasing buckets.
	if !(zero > b9 && b9 > b99 && b99 > b100) {
		t.Errorf("bucket shape broken: %v %v %v %v", zero, b9, b99, b100)
	}
}

func parseSeconds(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFigure6ShapeMatchesPaper(t *testing.T) {
	r := Figure6(1, 50_000)
	pollMean := parseSeconds(t, row(t, r, "poll mean").Measured)
	streamMean := parseSeconds(t, row(t, r, "stream mean").Measured)
	pollP95 := parseSeconds(t, row(t, r, "poll p95").Measured)
	streamP95 := parseSeconds(t, row(t, r, "stream p95").Measured)
	pollP99 := parseSeconds(t, row(t, r, "poll p99").Measured)
	streamP99 := parseSeconds(t, row(t, r, "stream p99").Measured)

	// Who wins: streaming beats polling at every aggregate.
	if streamMean >= pollMean {
		t.Errorf("stream mean %v >= poll mean %v", streamMean, pollMean)
	}
	if streamP95 >= pollP95 {
		t.Errorf("stream p95 %v >= poll p95 %v", streamP95, pollP95)
	}
	// Rough factors: paper's mean ratio 4.8/3.4 ≈ 1.4, p95 ratio 14/6 ≈ 2.3.
	if ratio := pollMean / streamMean; ratio < 1.2 || ratio > 2.2 {
		t.Errorf("mean ratio = %v, want ~1.4", ratio)
	}
	if ratio := pollP95 / streamP95; ratio < 1.6 || ratio > 3.2 {
		t.Errorf("p95 ratio = %v, want ~2.3", ratio)
	}
	// The defining shape: polling has a long tail, streaming is bounded.
	if pollP99 < 2*streamP99 {
		t.Errorf("poll tail p99=%v not clearly longer than stream p99=%v", pollP99, streamP99)
	}
	if streamP99 > 12 {
		t.Errorf("stream p99 = %v, should be bounded near the 10s cap", streamP99)
	}
	// Histogram series present for both curves.
	if len(r.Series["poll"]) != 20 || len(r.Series["stream"]) != 20 {
		t.Errorf("series lengths: poll=%d stream=%d", len(r.Series["poll"]), len(r.Series["stream"]))
	}
}

func parseMs(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTable3MatchesPaper(t *testing.T) {
	r := Table3(1, 50_000)
	checks := []struct {
		label  string
		paper  float64
		tolPct float64
	}{
		{"WAS update -> publish (LVC)", 2000, 10},
		{"WAS update -> publish (other)", 240, 10},
		{"Pylon publish -> BRASSes (<10k subs)", 100, 10},
		{"Pylon publish -> BRASSes (>=10k subs)", 109, 10},
		{"BRASS update -> device send", 76, 10},
		{"subscription -> replicated on Pylon", 73, 10},
		{"device subscribe (NA+EU)", 490, 15},
		{"device subscribe (all countries)", 970, 15},
	}
	for _, c := range checks {
		got := parseMs(t, row(t, r, c.label).Measured)
		lo := c.paper * (1 - c.tolPct/100)
		hi := c.paper * (1 + c.tolPct/100)
		if got < lo || got > hi {
			t.Errorf("%s = %vms, want %v±%v%%", c.label, got, c.paper, c.tolPct)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	r := Figure9(1, 30_000)
	tiTotal := parseMs(t, row(t, r, "total p50 (TI)").Measured)
	lvcTotal := parseMs(t, row(t, r, "total p50 (LVC)").Measured)
	if lvcTotal < 4*tiTotal {
		t.Errorf("LVC total p50 (%v) should dwarf TI (%v): ranking+buffering", lvcTotal, tiTotal)
	}
	// CDF series are monotone.
	for name, pts := range r.Series {
		for i := 1; i < len(pts); i++ {
			if pts[i].Y < pts[i-1].Y {
				t.Errorf("series %s not monotone at %d", name, i)
				break
			}
		}
	}
	if len(r.Series) != 8 {
		t.Errorf("series count = %d, want 8", len(r.Series))
	}
}

func TestFigure8RangesMatchPaper(t *testing.T) {
	r := Figure8(1)
	// Filtered fraction within the paper's implied band.
	filtered := parsePct(t, row(t, r, "fraction filtered at BRASS").Measured)
	if filtered < 80 || filtered > 95 {
		t.Errorf("filtered = %v%%, want 80-95%%", filtered)
	}
	// All five curves present with 96 buckets.
	for _, name := range []string{"streams", "subscriptions", "publications", "decisions", "deliveries"} {
		if len(r.Series[name]) != 96 {
			t.Errorf("series %s has %d points", name, len(r.Series[name]))
		}
	}
	// Diurnal shape: peak clearly above trough for streams.
	pts := r.Series["streams"]
	lo, hi := pts[0].Y, pts[0].Y
	for _, p := range pts {
		if p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	if hi < 1.5*lo {
		t.Errorf("streams curve not diurnal: [%v, %v]", lo, hi)
	}
}

func TestFigure10Ranges(t *testing.T) {
	r := Figure10(1)
	if len(r.Series["drops"]) != 96 || len(r.Series["reconnects"]) != 96 {
		t.Fatal("missing series")
	}
	for _, p := range r.Series["drops"] {
		if p.Y < 15e6 || p.Y > 40e6 {
			t.Errorf("drops %v/min outside plausible band", p.Y)
		}
	}
	for _, p := range r.Series["reconnects"] {
		if p.Y < 0.3e6 || p.Y > 4e6 {
			t.Errorf("reconnects %v/min outside plausible band", p.Y)
		}
	}
}

func TestSwitchoverReproduces10x(t *testing.T) {
	if testing.Short() {
		t.Skip("live-stack experiment; skipped in -short")
	}
	r := Switchover(1)
	// "TAO read queries (poll / stream)" measured is "A / B = Rx".
	m := row(t, r, "TAO read queries (poll / stream)").Measured
	parts := strings.Split(m, "= ")
	if len(parts) != 2 {
		t.Fatalf("measured format: %q", m)
	}
	ratio, err := strconv.ParseFloat(strings.TrimSuffix(parts[1], "x"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 5 {
		t.Errorf("TAO query reduction = %vx, want >=5x (paper: 10x)", ratio)
	}
	empty := parsePct(t, row(t, r, "empty poll fraction").Measured)
	if empty < 60 {
		t.Errorf("empty polls = %v%%, want >=60%% (paper: ~80%%)", empty)
	}
}

func TestAblationMetadataVsPayload(t *testing.T) {
	r := AblationMetadataVsPayload(1000, 2, 0.09)
	saved := parsePct(t, row(t, r, "bytes saved").Measured)
	if saved < 80 {
		t.Errorf("bytes saved = %v%%, metadata should be far smaller", saved)
	}
}

func TestAblationSubscriptionDedup(t *testing.T) {
	r := AblationSubscriptionDedup(50, 4)
	dedup := row(t, r, "Pylon subscribers (deduped)").Measured
	raw := row(t, r, "Pylon subscribers (per-stream)").Measured
	if dedup != "4" {
		t.Errorf("deduped subscribers = %s, want 4", dedup)
	}
	if raw != "200" {
		t.Errorf("per-stream subscribers = %s, want 200", raw)
	}
}

func TestAblationFirstResponder(t *testing.T) {
	r := AblationFirstResponder(1000)
	fr := row(t, r, "fanout start (first responder)")
	q := row(t, r, "fanout start (quorum wait)")
	frD, _ := time.ParseDuration(fr.Measured)
	qD, _ := time.ParseDuration(q.Measured)
	if frD >= qD {
		t.Errorf("first responder (%v) should start before quorum (%v)", frD, qD)
	}
}

func TestAblationRateLimitOrder(t *testing.T) {
	r := AblationRateLimitOrder(1000, 10, 0.2, nil)
	checksA, _ := strconv.Atoi(row(t, r, "checks (privacy first)").Measured)
	checksBR, _ := strconv.Atoi(row(t, r, "checks (per-app BRASS)").Measured)
	deliveredB, _ := strconv.Atoi(row(t, r, "delivered (rate-limit first)").Measured)
	deliveredBR, _ := strconv.Atoi(row(t, r, "delivered (per-app BRASS)").Measured)
	if checksA != 1000 {
		t.Errorf("privacy-first checks = %d", checksA)
	}
	if checksBR >= checksA/10 {
		t.Errorf("per-app checks = %d, should be near the slot count", checksBR)
	}
	if deliveredBR <= deliveredB {
		t.Errorf("per-app delivered %d <= rate-limit-first %d; should fill slots", deliveredBR, deliveredB)
	}
	if deliveredBR != 10 {
		t.Errorf("per-app delivered = %d, want all 10 slots", deliveredBR)
	}
}

func TestGenericVsPerAppFilterAgree(t *testing.T) {
	cfg := GenericFilterConfig{
		"min_score":   "0.2",
		"lang_filter": "on",
		"viewer_lang": "2",
		"drop_own":    "on",
		"viewer":      "7",
	}
	cases := []map[string]string{
		{"score": "0.5", "lang": "2", "author": "9"},
		{"score": "0.1", "lang": "2", "author": "9"},
		{"score": "0.5", "lang": "3", "author": "9"},
		{"score": "0.5", "lang": "2", "author": "7"},
		{"score": "0.9", "lang": "", "author": "1"},
	}
	for i, meta := range cases {
		g := GenericFilter(cfg, meta)
		p := PerAppFilter(0.2, "2", "7", meta)
		if g != p {
			t.Errorf("case %d: generic=%v perapp=%v for %v", i, g, p, meta)
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{ID: "x", Title: "T"}
	r.AddRow("a", "1", "2", "n")
	s := r.String()
	if !strings.Contains(s, "=== x: T ===") || !strings.Contains(s, "measured") {
		t.Errorf("render: %q", s)
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment including the live switchover")
	}
	results := All(2)
	if len(results) != 15 {
		t.Fatalf("All returned %d results", len(results))
	}
	ids := map[string]bool{}
	for _, r := range results {
		if len(r.Rows) == 0 {
			t.Errorf("%s has no rows", r.ID)
		}
		ids[r.ID] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "switchover", "storm", "hotfanout", "tracehops", "overload", "geofailover", "durlog"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}
