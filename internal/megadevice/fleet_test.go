package megadevice

import (
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"bladerunner/internal/edge"
	"bladerunner/internal/sim"
)

var t0 = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

// virtualFleet builds an engine-driven fleet with no dialer (trunks are
// virtual: attach always succeeds, no real session).
func virtualFleet(t testing.TB, devices, areas int) (*Fleet, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine(t0)
	as := make([]Area, areas)
	for i := range as {
		as[i] = Area{App: "test", Subscription: fmt.Sprintf("sub-%d", i), Topic: fmt.Sprintf("/T/%d", i), User: 1}
	}
	f, err := New(Config{
		Devices: devices,
		Areas:   as,
		POPs:    []string{"pop-0", "pop-1"},
		Sched:   engine,
		Clock:   engine,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, engine
}

func TestFleetConnectsAllVirtual(t *testing.T) {
	f, engine := virtualFleet(t, 1000, 10)
	f.ConnectAll(time.Minute)
	engine.Run()
	if got := f.ConnectedCount(); got != 1000 {
		t.Fatalf("connected = %d, want 1000", got)
	}
	if got := f.Connects.Value(); got != 1000 {
		t.Fatalf("Connects = %d, want 1000", got)
	}
	// Every stream must be attached to its trunk's shared subscription.
	f.mu.Lock()
	for sid := range f.tab.streamTopic {
		if f.tab.streamSubIdx[sid] == noIndex {
			f.mu.Unlock()
			t.Fatalf("stream %d not attached", sid)
		}
	}
	trunks := len(f.trunks)
	f.mu.Unlock()
	if trunks != 1 {
		t.Fatalf("trunks = %d, want 1 (all devices start on pop-0)", trunks)
	}
}

func TestDropReconnectRotatesPOP(t *testing.T) {
	f, engine := virtualFleet(t, 1, 1)
	f.ConnectAt(0, t0)
	engine.Run()
	if f.State(0) != StateConnected {
		t.Fatal("device did not connect")
	}
	f.DropAt(0, engine.Now().Add(time.Second))
	engine.Run()
	if f.State(0) != StateConnected {
		t.Fatalf("device did not reconnect (state %d)", f.State(0))
	}
	if d, c := f.Drops.Value(), f.Connects.Value(); d != 1 || c != 2 {
		t.Fatalf("Drops=%d Connects=%d, want 1/2", d, c)
	}
	f.mu.Lock()
	pop := f.trunkIDs[f.tab.trunk[0]].pop
	idx := f.tab.subIdxOK(0)
	f.mu.Unlock()
	if pop != "pop-1" {
		t.Fatalf("reconnected to %s, want rotated pop-1", pop)
	}
	if !idx {
		t.Fatal("stream not re-attached after reconnect")
	}
	// The reconnect must have waited out a backoff delay.
	if engine.Now().Sub(t0) < time.Second+25*time.Millisecond {
		t.Fatalf("reconnect too fast: %v", engine.Now().Sub(t0))
	}
}

// subIdxOK reports whether device 0's streams are all attached (test
// helper on tables).
func (tb *tables) subIdxOK(dev uint32) bool {
	for sid := tb.firstStream[dev]; sid != noStream; sid = tb.streamNext[sid] {
		if tb.streamSubIdx[sid] == noIndex {
			return false
		}
	}
	return true
}

func TestOffGoesIdleUntilReconnected(t *testing.T) {
	f, engine := virtualFleet(t, 2, 1)
	f.ConnectAll(0)
	engine.Run()
	f.OffAt(1, engine.Now().Add(time.Second))
	engine.Run()
	if f.State(1) != StateIdle || f.ConnectedCount() != 1 {
		t.Fatalf("state=%d connected=%d, want Idle/1", f.State(1), f.ConnectedCount())
	}
	if f.Pending() != 0 {
		t.Fatalf("pending = %d after Run", f.Pending())
	}
	// Off while a dial is pending: the stale kDial must not resurrect it.
	f.DropAt(0, engine.Now().Add(time.Second))
	f.OffAt(0, engine.Now().Add(time.Second+10*time.Millisecond))
	engine.Run()
	if f.State(0) != StateIdle {
		t.Fatalf("state=%d, want Idle (off must beat the pending redial)", f.State(0))
	}
	f.ConnectAt(0, engine.Now().Add(time.Minute))
	engine.Run()
	if f.State(0) != StateConnected {
		t.Fatal("device did not come back after Off")
	}
}

// failPopDialer fails configured targets and returns a drained pipe
// otherwise.
type failPopDialer struct{ fail map[string]bool }

func (d failPopDialer) Dial(target string) (io.ReadWriteCloser, error) {
	if d.fail[target] {
		return nil, errors.New("dial refused")
	}
	c, s := net.Pipe()
	go func() { _, _ = io.Copy(io.Discard, s) }()
	return c, nil
}

func TestDialFailureBacksOffAndRotates(t *testing.T) {
	engine := sim.NewEngine(t0)
	f, err := New(Config{
		Devices: 1,
		Areas:   []Area{{App: "test", Subscription: "s", Topic: "/T/0", User: 1}},
		POPs:    []string{"pop-0", "pop-1"},
		Dialer:  failPopDialer{fail: map[string]bool{"pop-0": true}},
		Sched:   engine,
		Clock:   engine,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.ConnectAt(0, t0)
	engine.Run()
	if f.State(0) != StateConnected {
		t.Fatalf("state = %d, want Connected via pop-1", f.State(0))
	}
	if f.DialFailures.Value() < 1 {
		t.Fatal("expected at least one dial failure on pop-0")
	}
	if engine.Now().Sub(t0) < 25*time.Millisecond {
		t.Fatalf("retry did not back off: connected at +%v", engine.Now().Sub(t0))
	}
}

func TestBackoffDelayJitteredBoundedDeterministic(t *testing.T) {
	f, _ := virtualFleet(t, 4, 1)
	base := float64(f.policy.Base)
	for attempt := uint8(0); attempt < 12; attempt++ {
		raw := base
		for i := uint8(0); i < attempt; i++ {
			raw *= 2
			if raw > float64(f.policy.Max) {
				raw = float64(f.policy.Max)
				break
			}
		}
		if raw > float64(f.policy.Max) {
			raw = float64(f.policy.Max)
		}
		for dev := uint32(0); dev < 4; dev++ {
			d := f.backoffDelay(dev, attempt)
			if float64(d) < raw*0.49 || float64(d) > raw*1.51 {
				t.Fatalf("delay(%d,%d) = %v outside jitter bounds of %v", dev, attempt, time.Duration(d), time.Duration(raw))
			}
			if d2 := f.backoffDelay(dev, attempt); d2 != d {
				t.Fatalf("delay(%d,%d) not deterministic: %d vs %d", dev, attempt, d, d2)
			}
		}
	}
	// Distinct devices must not retry in lockstep.
	if f.backoffDelay(0, 3) == f.backoffDelay(1, 3) && f.backoffDelay(0, 4) == f.backoffDelay(1, 4) {
		t.Fatal("jitter identical across devices")
	}
}

func TestApplyPayloadSeqProbeAndCounters(t *testing.T) {
	f, engine := virtualFleet(t, 8, 2)
	f.ConnectAll(0)
	engine.Run()
	f.mu.Lock()
	tr := f.trunkIDs[0]
	f.mu.Unlock()
	ts := tr.lookupSub(0)
	if ts == nil {
		t.Fatal("no shared subscription for area 0")
	}
	attached := len(ts.streams)
	if attached != 4 {
		t.Fatalf("area 0 attached = %d, want 4 (round-robin of 8 devices)", attached)
	}

	f.applyPayload(ts, 7)
	if got := f.Applied.Value(); got != int64(attached) {
		t.Fatalf("Applied = %d, want %d", got, attached)
	}
	for _, sid := range ts.streams {
		if f.LastSeq(sid) != 7 {
			t.Fatalf("stream %d LastSeq = %d, want 7", sid, f.LastSeq(sid))
		}
	}
	// Stale seq must not regress LastSeq.
	f.applyPayload(ts, 5)
	if f.LastSeq(ts.streams[0]) != 7 {
		t.Fatal("stale seq regressed LastSeq")
	}

	// An armed probe is claimed exactly once by the next applied delta.
	f.ProbeArm(0, 123)
	f.applyPayload(ts, 8)
	if f.ProbeArmed(0) {
		t.Fatal("probe not claimed")
	}
	if f.ApplyLatency.Count() != 1 {
		t.Fatalf("latency samples = %d, want 1", f.ApplyLatency.Count())
	}
	f.applyPayload(ts, 9)
	if f.ApplyLatency.Count() != 1 {
		t.Fatal("unarmed apply recorded a latency sample")
	}

	// A delta on an EMPTY subscription must not claim a probe: nothing
	// was delivered to any device.
	empty := &topicSub{trunk: tr, area: 1}
	f.ProbeArm(1, 456)
	f.applyPayload(empty, 10)
	if !f.ProbeArmed(1) {
		t.Fatal("empty apply claimed the probe")
	}
	if !f.ProbeDisarm(1) {
		t.Fatal("disarm found nothing")
	}
}

func TestTrunkDeathRedialsAttachedDevices(t *testing.T) {
	net := edge.NewPipeNetwork()
	for _, pop := range []string{"pop-0", "pop-1"} {
		net.Register(pop, func(rwc io.ReadWriteCloser) {
			go func() { _, _ = io.Copy(io.Discard, rwc) }()
		})
	}
	engine := sim.NewEngine(t0)
	f, err := New(Config{
		Devices: 100,
		Areas:   []Area{{App: "test", Subscription: "s", Topic: "/T/0", User: 1}},
		POPs:    []string{"pop-0", "pop-1"},
		Dialer:  net,
		Sched:   engine,
		Clock:   engine,
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.ConnectAll(0)
	engine.Run()
	if f.ConnectedCount() != 100 {
		t.Fatalf("connected = %d, want 100", f.ConnectedCount())
	}

	net.SetDown("pop-0", true)
	deadline := time.Now().Add(10 * time.Second)
	for {
		f.Service()
		engine.RunFor(10 * time.Second)
		if f.TrunkDeaths.Value() >= 1 && f.ConnectedCount() == 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not recover: deaths=%d connected=%d",
				f.TrunkDeaths.Value(), f.ConnectedCount())
		}
		time.Sleep(time.Millisecond)
	}
	f.mu.Lock()
	pop := f.trunks["pop-1"]
	f.mu.Unlock()
	if pop == nil {
		t.Fatal("no trunk on the healthy POP after failover")
	}
	if f.Connects.Value() != 200 {
		t.Fatalf("Connects = %d, want 200 (everyone re-dialed once)", f.Connects.Value())
	}
}

func TestFootprintStaysUnderBudget(t *testing.T) {
	devices := 100_000
	if testing.Short() {
		devices = 20_000
	}
	f, engine := virtualFleet(t, devices, 200)
	f.ConnectAll(time.Minute)
	engine.Run()
	// Churn a slice of the fleet so the heap and membership slices have
	// seen real traffic, then measure.
	for dev := 0; dev < devices/10; dev++ {
		f.DropAt(uint32(dev), engine.Now().Add(time.Duration(dev%60)*time.Second))
	}
	engine.Run()
	bpd := f.BytesPerDevice()
	if bpd > 64 {
		t.Fatalf("bytes/device = %.1f, want <= 64", bpd)
	}
	t.Logf("bytes/device = %.1f (footprint %d for %d devices)", bpd, f.Footprint(), devices)
}
