// Package core assembles a complete Bladerunner deployment: the social
// graph, TAO, the subscription KV cluster, Pylon, the WAS tier, BRASS
// hosts across regions, reverse proxies, and POPs — wired over an
// in-process network. It is the entry point the examples and the end-to-end
// tests use, and it includes the ZooKeeper-style configuration registry the
// paper stores BRASS placement and routing policy in (§3.2).
package core

import (
	"sync"
)

// Registry is a watchable key-value configuration store, standing in for
// ZooKeeper: application → BRASS placement, routing policy, and isolation
// configuration live here.
type Registry struct {
	mu       sync.Mutex
	data     map[string]string
	watchers map[string][]chan string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		data:     make(map[string]string),
		watchers: make(map[string][]chan string),
	}
}

// Set stores key=value and notifies watchers (non-blocking).
func (r *Registry) Set(key, value string) {
	r.mu.Lock()
	r.data[key] = value
	watchers := append([]chan string(nil), r.watchers[key]...)
	r.mu.Unlock()
	for _, ch := range watchers {
		//brlint:allow(counted-shed) level-triggered notify: the watcher re-reads current state on its next wake, so a dropped notification loses nothing
		select {
		case ch <- value:
		default: // watcher is slow; it will re-read on next notification
		}
	}
}

// Get returns the value and whether it exists.
func (r *Registry) Get(key string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.data[key]
	return v, ok
}

// GetDefault returns the value or def when absent.
func (r *Registry) GetDefault(key, def string) string {
	if v, ok := r.Get(key); ok {
		return v
	}
	return def
}

// Watch returns a channel receiving future values of key.
func (r *Registry) Watch(key string) <-chan string {
	ch := make(chan string, 4)
	r.mu.Lock()
	r.watchers[key] = append(r.watchers[key], ch)
	r.mu.Unlock()
	return ch
}

// Keys returns the number of stored keys.
func (r *Registry) Keys() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.data)
}
