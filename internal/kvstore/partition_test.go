package kvstore

import (
	"fmt"
	"math/rand"
	"testing"
)

// Partition/anti-entropy stress: random sequences of adds, removes, and
// replica outages must always converge to the correct membership once all
// replicas are healed and patched — the eventual-consistency property
// Pylon's subscription store depends on (paper §3.1).
func TestPartitionConvergenceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		regions := []string{"us", "eu", "ap"}
		nodes := make([]*Node, 6)
		for i := range nodes {
			nodes[i] = NewNode(fmt.Sprintf("kv%d", i), regions[i%3])
		}
		c := MustNewCluster(nodes, 3)
		key := fmt.Sprintf("topic-%d", trial)
		replicas := c.ReplicasFor(key)

		// Ground truth: last-writer-wins over every write that reached
		// at least one replica. Failed quorum writes are NOT rolled
		// back (Dynamo-style); their newer version wins the merge, so
		// the converged state reflects the last *applied* write, not
		// the last *acknowledged* one.
		truth := map[Member]bool{}
		for op := 0; op < 60; op++ {
			switch rng.Intn(10) {
			case 0, 1: // flip one replica's availability
				r := replicas[rng.Intn(len(replicas))]
				r.SetUp(!r.Up())
			default:
				m := Member(fmt.Sprintf("host%d", rng.Intn(5)))
				if rng.Intn(2) == 0 {
					if acked, _ := c.SetAdd(key, m); acked > 0 {
						truth[m] = true
					}
				} else {
					if acked, _ := c.SetRemove(key, m); acked > 0 {
						truth[m] = false
					}
				}
			}
		}
		// Heal everything and run anti-entropy.
		for _, r := range replicas {
			r.SetUp(true)
		}
		views := make([]SetView, 0, len(replicas))
		for _, resp := range c.ReadAll(key) {
			if resp.Err == nil {
				views = append(views, resp.View)
			}
		}
		merged := Merge(views...)
		c.Patch(key, merged)

		// Every replica now agrees with the merged view, and the merged
		// membership equals the quorum-acknowledged ground truth.
		want := map[Member]bool{}
		for m, present := range truth {
			if present {
				want[m] = true
			}
		}
		got := map[Member]bool{}
		for _, m := range merged.Members() {
			got[m] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged=%v want=%v", trial, got, want)
		}
		for m := range want {
			if !got[m] {
				t.Fatalf("trial %d: missing %s", trial, m)
			}
		}
		for _, r := range replicas {
			v, err := r.View(key)
			if err != nil {
				t.Fatal(err)
			}
			members := v.Members()
			if len(members) != len(want) {
				t.Fatalf("trial %d: replica %s diverged after patch: %v vs %v",
					trial, r.ID, members, want)
			}
		}
	}
}
