package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"bladerunner/internal/sim"
)

// child is one supervised tier process.
type child struct {
	role string
	args []string // full arg list EXCLUDING listen/ctrl pins
	// ctrlAddr/burstAddr are the addresses bound on first boot; restarts
	// pin them so the cluster's address book stays valid across a crash
	// (the POP-kill failover path: the new pop reuses the old port and
	// devices redial it).
	ctrlAddr  string
	burstAddr string

	mu  sync.Mutex
	cmd *exec.Cmd
	// done yields the cmd's Wait result exactly once; the reaper goroutine
	// started by spawn owns the Wait, so exited children never linger as
	// zombies even before the supervisor notices.
	done chan error
}

// supervisor runs the 4-process cluster: spawn in dependency order, parse
// each child's READY line, restart unexpected deaths, drain on SIGTERM.
type supervisor struct {
	exe      string
	draining chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	failed   chan error
}

// stop marks the cluster as draining so supervise loops treat child
// deaths as expected.
func (s *supervisor) stop() {
	s.stopOnce.Do(func() { close(s.draining) })
}

const restartLimit = 5

// runAll is the -role all entry point.
func runAll(b bootstrap) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate own binary: %w", err)
	}
	total := b.Procs
	if total < 4 {
		total = 4
	}
	sup := &supervisor{exe: exe, draining: make(chan struct{}), failed: make(chan error, total)}

	common := []string{
		"-region", b.Region,
		"-users", fmt.Sprint(b.Users),
		"-seed", fmt.Sprint(b.Seed),
		fmt.Sprintf("-durlog=%v", b.Durlog),
	}

	var children []*child
	abort := func(err error) error {
		sup.stop()
		sup.shutdown(reverse(children))
		sup.wg.Wait()
		return err
	}

	pylon := &child{role: "pylon", args: common}
	if err := sup.boot(pylon); err != nil {
		return abort(err)
	}
	children = append(children, pylon)
	wasNode := &child{role: "was", args: append([]string{"-pylon", pylon.ctrlAddr}, common...)}
	if err := sup.boot(wasNode); err != nil {
		return abort(err)
	}
	children = append(children, wasNode)
	brass := &child{role: "brass", args: append([]string{
		"-pylon", pylon.ctrlAddr, "-was", wasNode.ctrlAddr,
		"-hosts", fmt.Sprint(b.Hosts),
	}, common...)}
	if err := sup.boot(brass); err != nil {
		return abort(err)
	}
	children = append(children, brass)
	brassTarget := fmt.Sprintf("brass-%s-0=%s", b.Region, brass.burstAddr)
	for i := 0; i < total-3; i++ {
		pop := &child{role: "pop", args: append([]string{"-brass", brassTarget}, common...)}
		if err := sup.boot(pop); err != nil {
			return abort(err)
		}
		children = append(children, pop)
	}

	fmt.Println("CLUSTER-READY")

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	var failure error
	select {
	case <-sigc:
	case failure = <-sup.failed:
		log.Printf("launcher: giving up: %v", failure)
	}
	sup.stop()
	sup.shutdown(reverse(children))
	sup.wg.Wait()
	if failure != nil {
		return failure
	}
	log.Printf("launcher: cluster drained")
	return nil
}

func reverse(cs []*child) []*child {
	out := make([]*child, len(cs))
	for i, c := range cs {
		out[len(cs)-1-i] = c
	}
	return out
}

// boot starts ch for the first time, waits for its READY line, records
// its bound addresses, announces it, and begins supervising it.
func (s *supervisor) boot(ch *child) error {
	cmd, done, err := s.spawn(ch)
	if err != nil {
		return err
	}
	ch.mu.Lock()
	ch.cmd, ch.done = cmd, done
	ch.mu.Unlock()
	s.announce(ch, cmd.Process.Pid)
	s.wg.Add(1)
	go s.supervise(ch)
	return nil
}

// spawn launches one process for ch and blocks until its READY line
// arrives (recording the bound addresses on first boot; pinning them on
// restarts). Child stderr and non-READY stdout pass through to our
// stderr, prefixed.
func (s *supervisor) spawn(ch *child) (*exec.Cmd, chan error, error) {
	args := []string{"-role", ch.role}
	// Pin addresses once known, so restarts land on the same ports.
	if ch.ctrlAddr != "" {
		args = append(args, "-ctrl", ch.ctrlAddr)
	}
	if ch.burstAddr != "" && ch.burstAddr != "-" {
		args = append(args, "-listen", ch.burstAddr)
	}
	args = append(args, ch.args...)
	cmd := exec.Command(s.exe, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("start %s: %w", ch.role, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }() // reaper: sole owner of Wait

	readyc := make(chan map[string]string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "READY ") {
				kv := map[string]string{}
				for _, tok := range strings.Fields(line)[1:] {
					if k, v, ok := strings.Cut(tok, "="); ok {
						kv[k] = v
					}
				}
				//brlint:allow(counted-shed) only the first READY line matters; a duplicate from a restarted child is not a shed worth counting
				select {
				case readyc <- kv:
				default:
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "[%s] %s\n", ch.role, line)
		}
	}()

	select {
	case kv := <-readyc:
		ch.ctrlAddr = kv["ctrl"]
		ch.burstAddr = kv["burst"]
		return cmd, done, nil
	case werr := <-done:
		return nil, nil, fmt.Errorf("%s exited before READY: %v", ch.role, werr)
	case <-sim.Timeout(sim.RealClock{}, 30*time.Second):
		_ = cmd.Process.Kill()
		return nil, nil, fmt.Errorf("%s never became READY", ch.role)
	}
}

// announce prints the machine-readable per-child line.
func (s *supervisor) announce(ch *child, pid int) {
	fmt.Printf("CHILD role=%s pid=%d ctrl=%s burst=%s\n", ch.role, pid, ch.ctrlAddr, ch.burstAddr)
}

// supervise restarts ch when it dies outside a drain, pinning its old
// addresses. More than restartLimit consecutive failures abandons the
// cluster.
func (s *supervisor) supervise(ch *child) {
	defer s.wg.Done()
	restarts := 0
	for {
		ch.mu.Lock()
		done := ch.done
		ch.mu.Unlock()
		var err error
		select {
		case err = <-done:
		case <-s.draining:
			return
		}
		select {
		case <-s.draining:
			return
		default:
		}
		restarts++
		if restarts > restartLimit {
			s.failed <- fmt.Errorf("%s died %d times (last: %v)", ch.role, restarts, err)
			return
		}
		log.Printf("launcher: %s died (%v); restarting on ctrl=%s burst=%s", ch.role, err, ch.ctrlAddr, ch.burstAddr)
		sim.Sleep(sim.RealClock{}, 100*time.Millisecond)
		next, ndone, serr := s.spawn(ch)
		if serr != nil {
			s.failed <- fmt.Errorf("restart %s: %w", ch.role, serr)
			return
		}
		ch.mu.Lock()
		ch.cmd, ch.done = next, ndone
		ch.mu.Unlock()
		s.announce(ch, next.Process.Pid)
	}
}

// shutdown drains children in order: SIGTERM, bounded wait, SIGKILL.
func (s *supervisor) shutdown(children []*child) {
	for _, ch := range children {
		ch.mu.Lock()
		cmd := ch.cmd
		ch.mu.Unlock()
		if cmd == nil || cmd.Process == nil {
			continue
		}
		_ = cmd.Process.Signal(syscall.SIGTERM)
	}
	clock := sim.RealClock{}
	deadline := clock.Now().Add(10 * time.Second)
	for _, ch := range children {
		ch.mu.Lock()
		cmd := ch.cmd
		ch.mu.Unlock()
		if cmd == nil || cmd.Process == nil {
			continue
		}
		for clock.Now().Before(deadline) {
			if cmd.Process.Signal(syscall.Signal(0)) != nil {
				break // exited
			}
			sim.Sleep(sim.RealClock{}, 50*time.Millisecond)
		}
		_ = cmd.Process.Kill()
	}
}
