package sim

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(t0)
	var got []int
	e.After(30*time.Millisecond, func() { got = append(got, 3) })
	e.After(10*time.Millisecond, func() { got = append(got, 1) })
	e.After(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != t0.Add(30*time.Millisecond) {
		t.Errorf("Now = %v, want %v", e.Now(), t0.Add(30*time.Millisecond))
	}
}

func TestEngineFIFOForEqualTimestamps(t *testing.T) {
	e := NewEngine(t0)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(t0)
	ran := false
	cancel := e.After(time.Second, func() { ran = true })
	cancel()
	cancel() // idempotent
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(t0)
	var times []time.Duration
	e.After(time.Second, func() {
		times = append(times, e.Now().Sub(t0))
		e.After(time.Second, func() {
			times = append(times, e.Now().Sub(t0))
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("nested times = %v", times)
	}
}

func TestEngineRunUntilLeavesFutureEvents(t *testing.T) {
	e := NewEngine(t0)
	var count int
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Minute, func() { count++ })
	}
	e.RunUntil(t0.Add(5 * time.Minute))
	if count != 5 {
		t.Errorf("events before deadline = %d, want 5", count)
	}
	if e.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", e.Pending())
	}
	if e.Now() != t0.Add(5*time.Minute) {
		t.Errorf("Now = %v", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Errorf("total events = %d, want 10", count)
	}
}

func TestEngineRunForAdvancesIdleClock(t *testing.T) {
	e := NewEngine(t0)
	e.RunFor(time.Hour)
	if e.Now() != t0.Add(time.Hour) {
		t.Errorf("Now = %v, want +1h", e.Now())
	}
}

func TestEnginePastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine(t0)
	var at time.Time
	e.At(t0.Add(-time.Hour), func() { at = e.Now() })
	e.Run()
	if at != t0 {
		t.Errorf("past event ran at %v, want %v", at, t0)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(t0)
		rng := rand.New(rand.NewSource(seed))
		var out []time.Duration
		var spawn func(depth int)
		spawn = func(depth int) {
			out = append(out, e.Now().Sub(t0))
			if depth < 3 {
				for i := 0; i < 3; i++ {
					d := time.Duration(rng.Intn(1000)) * time.Millisecond
					e.After(d, func() { spawn(depth + 1) })
				}
			}
		}
		e.After(0, func() { spawn(0) })
		e.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(t0)
	if c.Now() != t0 {
		t.Fatal("initial time wrong")
	}
	c.Advance(90 * time.Second)
	if c.Now() != t0.Add(90*time.Second) {
		t.Errorf("Advance: Now = %v", c.Now())
	}
	c.Set(t0)
	if c.Now() != t0 {
		t.Errorf("Set: Now = %v", c.Now())
	}
}

func TestRealClockAfter(t *testing.T) {
	done := make(chan struct{})
	RealClock{}.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RealClock.After never fired")
	}
}

func TestRealClockCancel(t *testing.T) {
	fired := make(chan struct{}, 1)
	cancel := RealClock{}.After(50*time.Millisecond, func() { fired <- struct{}{} })
	cancel()
	select {
	case <-fired:
		t.Fatal("cancelled timer fired")
	case <-time.After(150 * time.Millisecond):
	}
}

// Property: events always execute in non-decreasing time order regardless of
// the insertion pattern.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(t0)
		var prev time.Time
		ok := true
		for _, d := range delays {
			e.After(time.Duration(d)*time.Millisecond, func() {
				if e.Now().Before(prev) {
					ok = false
				}
				prev = e.Now()
			})
		}
		e.Run()
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCancelFuncReleasesEvent asserts that an invoked cancel func retains
// no reference to its event: the captured state must be collectable even
// while the cancel funcs themselves stay alive (devices hold reconnect /
// keepalive cancels for their whole lifetime). Regression test for the
// retained-event leak: pre-fix, each held cancel pinned its 48-byte event
// struct forever, which at a million devices is tens of megabytes.
func TestCancelFuncReleasesEvent(t *testing.T) {
	const n = 200_000
	e := NewEngine(t0)
	cancels := make([]func(), 0, n)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	for i := 0; i < n; i++ {
		cancels = append(cancels, e.After(time.Duration(i)*time.Microsecond, func() {}))
	}
	// Half fire, half are cancelled; every cancel func is then invoked and
	// RETAINED — only the events may be collected.
	for _, c := range cancels[n/2:] {
		c()
	}
	e.Run()
	for _, c := range cancels[:n/2] {
		c()
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(cancels)

	// The cancel closures themselves (retained on purpose) cost ~6.5 MB;
	// n pinned events would add ~16 MB on top (64-byte structs with an
	// embedded time.Time). The threshold sits between the two so the test
	// fails if events (or the drained heap array) are ever pinned again.
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if delta > 9<<20 {
		t.Fatalf("invoked cancel funcs retain too much memory: %d bytes live for %d events", delta, n)
	}
}

// TestCancelIdempotentAfterFire: cancelling after the event ran must be a
// no-op (and must not disturb other pending events).
func TestCancelIdempotentAfterFire(t *testing.T) {
	e := NewEngine(t0)
	ran := 0
	c := e.After(time.Millisecond, func() { ran++ })
	e.After(2*time.Millisecond, func() { ran++ })
	e.Run()
	c()
	c()
	if ran != 2 || e.Pending() != 0 {
		t.Fatalf("ran=%d pending=%d, want 2/0", ran, e.Pending())
	}
}

// TestQueueShrinksAfterDrain: the heap's backing array must not stay at
// burst capacity after the burst drains.
func TestQueueShrinksAfterDrain(t *testing.T) {
	const n = 1 << 20
	e := NewEngine(t0)
	for i := 0; i < n; i++ {
		e.After(time.Duration(i)*time.Microsecond, func() {})
	}
	peak := cap(e.queue)
	if peak < n {
		t.Fatalf("backing array smaller than burst: %d < %d", peak, n)
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Run", e.Pending())
	}
	if c := cap(e.queue); c > peak/64 {
		t.Fatalf("drained queue still holds cap %d (peak %d); backing array never shrank", c, peak)
	}
	// The engine must keep working after shrinks.
	ran := false
	e.After(time.Millisecond, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("event scheduled after shrink did not run")
	}
}
