package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"bladerunner/internal/metrics"
	"bladerunner/internal/sim"
)

// Figure6 regenerates the LiveVideoComments latency comparison between the
// polling implementation and Bladerunner: the distribution of time from
// comment creation to availability at the edge.
//
// The structural difference reproduced here:
//
//   - Polling latency = store-visibility + wait-for-next-poll (uniform over
//     the interval, possibly several intervals when a poll misses) + the
//     poll's response time, whose tail is heavy because hot-video polls are
//     range/intersect queries over many TAO shards under load. The tail of
//     the response time is what produces the paper's long latency tail.
//   - Streaming latency = WAS ranking (bounded) + Pylon fanout + BRASS
//     processing + ranked-buffer wait (capped at 10 s by the product) +
//     push. Every stage is bounded, so the tail collapses.
//
// Paper anchors: mean 4.8 s → 3.4 s, p75 6 s → 4 s, p95 14 s → 6 s.
func Figure6(seed int64, samples int) Result {
	rng := rand.New(rand.NewSource(seed))
	poll := DefaultPollModels()
	stream := DefaultStreamModels()

	pollHist := metrics.NewHistogram()
	streamHist := metrics.NewHistogram()

	for i := 0; i < samples; i++ {
		pollHist.Observe(samplePollLatency(rng, poll))
		streamHist.Observe(sampleStreamLatency(rng, stream))
	}

	r := Result{ID: "fig6", Title: "LVC comment latency: poll vs stream"}
	ps, ss := pollHist.Snapshot(), streamHist.Snapshot()
	secs := func(d time.Duration) string { return fmt.Sprintf("%.1fs", d.Seconds()) }
	r.AddRow("poll mean", "4.8s", secs(ps.Mean), "")
	r.AddRow("stream mean", "3.4s", secs(ss.Mean), "")
	r.AddRow("poll p75", "6s", secs(ps.P75), "")
	r.AddRow("stream p75", "4s", secs(ss.P75), "")
	r.AddRow("poll p95", "14s", secs(ps.P95), "long tail")
	r.AddRow("stream p95", "6s", secs(ss.P95), "tail eliminated")
	r.AddRow("poll p99", "-", secs(ps.P99), "not reported; tail persists")
	r.AddRow("stream p99", "-", secs(ss.P99), "bounded by 10s buffer cap")

	// The figure's histogram: fraction of deliveries per 1-second bucket,
	// 1..20 s (matching the paper's x-axis).
	r.AddSeries("poll", histogramSeries(pollHist, samples))
	r.AddSeries("stream", histogramSeries(streamHist, samples))
	return r
}

// samplePollLatency draws one comment's poll-path latency.
func samplePollLatency(rng *rand.Rand, m PollModels) time.Duration {
	lat := m.StoreVisible.Sample(rng)
	// Wait for the next poll tick.
	lat += time.Duration(rng.Int63n(int64(m.Interval)))
	// A poll may miss the comment (index lag); each miss costs another
	// interval.
	for rng.Float64() < m.MissProb {
		lat += m.Interval
	}
	// The poll that finds it still has to complete.
	lat += m.Response.Sample(rng)
	return lat
}

// sampleStreamLatency draws one comment's Bladerunner-path latency.
func sampleStreamLatency(rng *rand.Rand, m StreamModels) time.Duration {
	lat := m.L.EdgeToWAS.Sample(rng)
	lat += m.L.WASRanking.Sample(rng) // LVC pre-ranks everything
	lat += m.L.PylonFanout.Sample(rng)
	lat += m.L.BRASSProcess.Sample(rng)
	wait := m.BufferWait.Sample(rng)
	if wait > m.BufferCap {
		wait = m.BufferCap
	}
	lat += wait
	lat += m.L.BRASSQueryWAS.Sample(rng)
	lat += m.L.LVCPushToDevice.Sample(rng)
	return lat
}

// histogramSeries converts a histogram into the paper's per-second
// fraction buckets, 1..20 s.
func histogramSeries(h *metrics.Histogram, total int) []SeriesPoint {
	bounds := make([]time.Duration, 20)
	for i := range bounds {
		bounds[i] = time.Duration(i+1) * time.Second
	}
	counts := h.Buckets(bounds)
	out := make([]SeriesPoint, 0, 20)
	for i := 0; i < 20; i++ {
		out = append(out, SeriesPoint{
			X: float64(i + 1),
			Y: float64(counts[i]) / float64(total),
		})
	}
	return out
}

var _ = sim.Constant{} // latency models come from latency.go
