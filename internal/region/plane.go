package region

import (
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/metrics"
	"bladerunner/internal/pylon"
	"bladerunner/internal/sim"
)

// replBuffer is the per-link replication queue depth. The paper calls
// cross-region bandwidth "a limited resource"; a full queue sheds rather
// than blocking the publisher (the event is still delivered in its origin
// region — remote regions recover via application-level catch-up).
const replBuffer = 8192

// Plane is the cross-region event replication plane: one Pylon cluster
// per region, a WAS-facing Publish that delivers synchronously in the
// event's origin region, and per-link worker goroutines that replay the
// event into every other region after the link's sampled replication lag.
type Plane struct {
	topo  *Topology
	sched sim.Scheduler

	pylons map[string]*pylon.Service
	links  []*replLink

	closeOnce sync.Once

	// ReplLag observes event age (now − Published) at remote delivery.
	ReplLag *metrics.Histogram
	// ReplDrops counts events shed because a link's queue was full.
	ReplDrops metrics.Counter
	// ReplDelivered counts events delivered into a remote region.
	ReplDelivered metrics.Counter
}

// replLink carries events from one origin region into one remote region.
type replLink struct {
	plane *Plane
	link  Link
	dst   *pylon.Service
	ch    chan pylon.Event
	done  chan struct{}
	wg    sync.WaitGroup

	// Drops counts events shed on this link (queue full).
	Drops metrics.Counter
}

// NewPlane wires one Pylon service per region into a replication plane.
// pylons must have an entry for every region in topo.
func NewPlane(topo *Topology, sched sim.Scheduler, pylons map[string]*pylon.Service) (*Plane, error) {
	if sched == nil {
		sched = sim.RealClock{}
	}
	for _, r := range topo.Regions() {
		if pylons[r] == nil {
			return nil, fmt.Errorf("region: no pylon for region %q", r)
		}
	}
	p := &Plane{
		topo:    topo,
		sched:   sched,
		pylons:  pylons,
		ReplLag: metrics.NewHistogram(),
	}
	// One directed link per ordered region pair: every region's mutations
	// replicate to every other region.
	for _, src := range topo.Regions() {
		for _, dst := range topo.Regions() {
			if src == dst {
				continue
			}
			l := &replLink{
				plane: p,
				link:  Link{src, dst},
				dst:   pylons[dst],
				ch:    make(chan pylon.Event, replBuffer),
				done:  make(chan struct{}),
			}
			l.wg.Add(1)
			go l.run()
			p.links = append(p.links, l)
		}
	}
	return p, nil
}

// Pylon returns the region-local Pylon service for r (nil if unknown).
func (p *Plane) Pylon(r string) *pylon.Service { return p.pylons[r] }

// Topology returns the plane's topology.
func (p *Plane) Topology() *Topology { return p.topo }

// Publish implements was.Publisher: the event is delivered synchronously
// in its origin region's Pylon (empty Origin means the primary region) and
// enqueued for asynchronous replication to every other region. The return
// value is the origin-region fan-out — remote fan-outs happen after the
// replication lag, off this goroutine.
//
//brlint:hotpath origin delivery plus per-link enqueue; gated at 0 allocs/op
func (p *Plane) Publish(ev pylon.Event) (int, error) {
	origin := ev.Origin
	if origin == "" {
		origin = p.topo.Primary()
		ev.Origin = origin
	}
	if ev.Published.IsZero() {
		ev.Published = p.sched.Now()
	}
	home := p.pylons[origin]
	if home == nil {
		return 0, fmt.Errorf("region: publish from unknown region %q", origin)
	}
	n, err := home.Publish(ev)
	if err != nil {
		return n, err
	}
	for _, l := range p.links {
		if l.link.Src != origin {
			continue
		}
		select {
		case l.ch <- ev:
		default:
			l.Drops.Inc()
			p.ReplDrops.Inc()
		}
	}
	return n, err
}

// Close stops every replication worker and waits for them to exit. Safe
// to call with links partitioned or regions down — workers parked waiting
// for a heal observe done and exit, so a failed chaos run cannot leak
// goroutines.
func (p *Plane) Close() {
	p.closeOnce.Do(func() {
		for _, l := range p.links {
			close(l.done)
		}
	})
	for _, l := range p.links {
		l.wg.Wait()
	}
}

// run drains the link's queue: each event is held until its replication
// deadline (Published + sampled lag), then delivered into the remote
// region's Pylon — once the link is up. A partitioned link parks the
// worker on the topology's change broadcast; heal releases the backlog in
// order, which is what gives remote regions a gap-free converged view
// after partition-heal.
func (l *replLink) run() {
	defer l.wg.Done()
	topo := l.plane.topo
	for {
		select {
		case <-l.done:
			return
		case ev := <-l.ch:
			lag := topo.SampleReplLag(l.link.Src, l.link.Dst)
			deadline := ev.Published.Add(lag)
			for {
				now := l.plane.sched.Now()
				if !now.Before(deadline) {
					break
				}
				select {
				case <-l.done:
					return
				case <-sim.Timeout(l.plane.sched, deadline.Sub(now)):
				}
			}
			// Hold delivery across a partition; resume on heal.
			for !topo.LinkUp(l.link.Src, l.link.Dst) {
				changed := topo.Changed()
				if topo.LinkUp(l.link.Src, l.link.Dst) {
					break
				}
				select {
				case <-l.done:
					return
				case <-changed:
				}
			}
			if _, err := l.dst.Publish(ev); err == nil {
				l.plane.ReplDelivered.Inc()
				l.plane.ReplLag.Observe(l.plane.sched.Now().Sub(ev.Published))
			}
		}
	}
}

// QueueDepths reports the current per-link queue depth, keyed by link —
// observability for partition experiments (how much backlog a heal must
// drain).
func (p *Plane) QueueDepths() map[Link]int {
	out := make(map[Link]int, len(p.links))
	for _, l := range p.links {
		out[l.link] = len(l.ch)
	}
	return out
}

// LinkDrops returns events shed on the src→dst link.
func (p *Plane) LinkDrops(src, dst string) int64 {
	for _, l := range p.links {
		if l.link == (Link{src, dst}) {
			return l.Drops.Value()
		}
	}
	return 0
}

var _ interface {
	Publish(ev pylon.Event) (int, error)
} = (*Plane)(nil)

// FlushWait polls until every link queue is empty or timeout elapses,
// returning whether the queues drained. Test helper for "replication has
// converged" assertions.
func (p *Plane) FlushWait(timeout time.Duration) bool {
	deadline := p.sched.Now().Add(timeout)
	for {
		drained := true
		for _, l := range p.links {
			if len(l.ch) != 0 {
				drained = false
				break
			}
		}
		if drained {
			return true
		}
		if p.sched.Now().After(deadline) {
			return false
		}
		sim.Sleep(p.sched, time.Millisecond)
	}
}
