package apps

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/pylon"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// AppReactions is the LiveVideoReactions application name.
const AppReactions = "reactions"

// LiveVideoReactions is the floating-hearts overlay on live videos (one of
// the prominent applications listed in §1). Its BRASS pattern is
// *aggregation*: individual reaction events are never forwarded; each
// stream accumulates per-kind counts and the BRASS pushes a summed batch
// per interval. At a million reactions per minute the device receives a
// handful of counters — the strongest possible form of "drop messages
// intelligently".
type LiveVideoReactions struct {
	w Registrar

	// FlushInterval is the aggregate push cadence.
	FlushInterval time.Duration
}

// ReactionsTopic returns the Pylon topic for a video's reactions.
func ReactionsTopic(videoID uint64) pylon.Topic {
	return pylon.Topic(fmt.Sprintf("/LVR/%d", videoID))
}

// ReactionAggregate is the device-facing batched counter update.
type ReactionAggregate struct {
	VideoID uint64           `json:"video_id"`
	Counts  map[string]int64 `json:"counts"`
}

// NewLiveVideoReactions registers the WAS half and returns the application.
func NewLiveVideoReactions(w Registrar) *LiveVideoReactions {
	a := &LiveVideoReactions{w: w, FlushInterval: time.Second}

	w.RegisterMutation("reactToVideo", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		videoID, err := call.Uint64Arg("videoID")
		if err != nil {
			return nil, err
		}
		kind, err := call.StringArg("kind")
		if err != nil {
			return nil, err
		}
		switch kind {
		case "like", "love", "wow", "haha", "sad", "angry":
		default:
			return nil, fmt.Errorf("reactions: unknown kind %q", kind)
		}
		// Reactions are tiny and ephemeral: no TAO object per reaction,
		// only an aggregate counter association bump and the event.
		ctx.Srv.TAO.AssocAdd(tao.ObjID(videoID), tao.AssocType("reaction_"+kind),
			tao.ObjID(ctx.Viewer), ctx.Now, "")
		ctx.Publish(pylon.Event{
			Topic: ReactionsTopic(videoID),
			Meta: map[string]string{
				"kind":   kind,
				"author": strconv.FormatUint(uint64(ctx.Viewer), 10),
				"video":  strconv.FormatUint(videoID, 10),
			},
		}, false)
		return true, nil
	})

	w.RegisterSubscription("liveVideoReactions", func(ctx *was.Ctx, call was.FieldCall) ([]pylon.Topic, error) {
		videoID, err := call.Uint64Arg("videoID")
		if err != nil {
			return nil, err
		}
		return []pylon.Topic{ReactionsTopic(videoID)}, nil
	})

	w.RegisterPayload(AppReactions, func(ctx *was.Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		// Aggregates are assembled BRASS-side; the payload resolver is
		// only used for diagnostics.
		return ev.Meta, nil
	})
	return a
}

// Name implements brass.Application.
func (a *LiveVideoReactions) Name() string { return AppReactions }

type reactionsStream struct {
	videoID uint64
	counts  map[string]int64
	cancel  func()
}

type reactionsInstance struct {
	app *LiveVideoReactions
	rt  *brass.Runtime
}

// NewInstance implements brass.Application.
func (a *LiveVideoReactions) NewInstance(rt *brass.Runtime) brass.AppInstance {
	return &reactionsInstance{app: a, rt: rt}
}

func (in *reactionsInstance) OnStreamOpen(st *brass.Stream) error {
	topics, err := in.rt.ResolveSubscription(st.Viewer, st.Header(burst.HdrSubscription))
	if err != nil {
		return err
	}
	state := &reactionsStream{counts: make(map[string]int64)}
	st.State = state
	for _, t := range topics {
		if err := st.AddTopic(t); err != nil {
			return err
		}
	}
	in.scheduleFlush(st, state)
	return nil
}

func (in *reactionsInstance) scheduleFlush(st *brass.Stream, state *reactionsStream) {
	state.cancel = in.rt.After(in.app.FlushInterval, func() {
		in.flush(st, state)
		if st.State == state {
			in.scheduleFlush(st, state)
		}
	})
}

func (in *reactionsInstance) flush(st *brass.Stream, state *reactionsStream) {
	if len(state.counts) == 0 {
		return
	}
	agg := ReactionAggregate{VideoID: state.videoID, Counts: state.counts}
	state.counts = make(map[string]int64)
	b, err := json.Marshal(agg)
	if err != nil {
		return
	}
	_ = st.PushPayload(0, b)
}

func (in *reactionsInstance) OnStreamClose(st *brass.Stream, reason string) {
	if state, ok := st.State.(*reactionsStream); ok {
		if state.cancel != nil {
			state.cancel()
		}
		st.State = nil
	}
}

func (in *reactionsInstance) OnEvent(ev pylon.Event) {
	kind := ev.Meta["kind"]
	video, _ := strconv.ParseUint(ev.Meta["video"], 10, 64)
	for _, st := range in.rt.Instance().StreamsForTopic(ev.Topic) {
		state, ok := st.State.(*reactionsStream)
		if !ok {
			continue
		}
		state.videoID = video
		state.counts[kind]++
		// Aggregated, not forwarded: this counts as intelligent
		// dropping in the decision/delivery accounting — the flush
		// delivers one batch regardless of the event count.
	}
}

func (in *reactionsInstance) OnAck(st *brass.Stream, seq uint64) {}

var _ brass.Application = (*LiveVideoReactions)(nil)
