package apps

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/durlog"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// Messenger is the application that needs reliable, in-order delivery on
// top of Bladerunner's best-effort substrate (paper §4). Each user has a
// mailbox; every message to a thread is appended to each member's mailbox
// with the mailbox's next consecutive sequence number. Gaps are therefore
// detectable at both the BRASS and the device, and the BRASS repairs them
// by querying the WAS — so the device rarely has to.
//
// Resumption state (the last sequence number pushed) is persisted in the
// stream header via rewrites: after a failure, the resubscribe arrives
// carrying HdrResumeSeq and the (possibly different) serving BRASS catches
// the device up from the mailbox before resuming live delivery.
type Messenger struct {
	w Registrar

	mu      sync.Mutex
	threads map[uint64][]socialgraph.UserID // thread → members
	mailbox map[socialgraph.UserID]*mailboxState
	nextTID uint64
}

type mailboxState struct {
	ref     tao.ObjID // TAO object anchoring the mailbox assoc list
	nextSeq uint64
}

// MessagePayload is the device-facing message JSON.
type MessagePayload struct {
	Seq    uint64 `json:"seq"`
	Thread uint64 `json:"thread"`
	Author uint64 `json:"author"`
	Text   string `json:"text"`
}

// MailboxTopic returns the Pylon topic for a user's mailbox.
func MailboxTopic(uid socialgraph.UserID) pylon.Topic {
	return pylon.Topic(fmt.Sprintf("/MB/%d", uid))
}

// NewMessenger registers the WAS half and returns the application.
func NewMessenger(w Registrar) *Messenger {
	a := &Messenger{
		w:       w,
		threads: make(map[uint64][]socialgraph.UserID),
		mailbox: make(map[socialgraph.UserID]*mailboxState),
	}

	// createThread(members: "1,2,3") → thread id.
	w.RegisterMutation("createThread", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		raw, err := call.StringArg("members")
		if err != nil {
			return nil, err
		}
		var members []socialgraph.UserID
		for _, part := range strings.Split(raw, ",") {
			uid, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("messenger: bad member %q", part)
			}
			members = append(members, socialgraph.UserID(uid))
		}
		if len(members) == 0 {
			return nil, fmt.Errorf("messenger: thread needs members")
		}
		a.mu.Lock()
		a.nextTID++
		tid := a.nextTID
		a.threads[tid] = members
		a.mu.Unlock()
		return tid, nil
	})

	// sendMessage(threadID: T, text: "..."): append to every member's
	// mailbox with that mailbox's next sequence number, then publish one
	// event per member mailbox.
	w.RegisterMutation("sendMessage", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		tid, err := call.Uint64Arg("threadID")
		if err != nil {
			return nil, err
		}
		text, err := call.StringArg("text")
		if err != nil {
			return nil, err
		}
		a.mu.Lock()
		members := a.threads[tid]
		a.mu.Unlock()
		if members == nil {
			return nil, fmt.Errorf("messenger: unknown thread %d", tid)
		}
		ref := ctx.Srv.TAO.ObjectAdd("message", map[string]string{
			"text":   text,
			"author": strconv.FormatUint(uint64(ctx.Viewer), 10),
			"thread": strconv.FormatUint(tid, 10),
		})
		for _, member := range members {
			seq := a.appendToMailbox(ctx, member, ref)
			ctx.Publish(pylon.Event{
				Topic: MailboxTopic(member),
				Ref:   uint64(ref),
				Seq:   seq,
				Meta: map[string]string{
					"author": strconv.FormatUint(uint64(ctx.Viewer), 10),
					"thread": strconv.FormatUint(tid, 10),
					"seq":    strconv.FormatUint(seq, 10),
				},
			}, false)
		}
		return uint64(ref), nil
	})

	// mailboxSince(seq: S) → messages with sequence > S, oldest first.
	// The BRASS uses this for gap repair and resume catch-up.
	w.RegisterQuery("mailboxSince", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		since, err := call.Uint64Arg("seq")
		if err != nil {
			return nil, err
		}
		return a.mailboxSince(ctx, ctx.Viewer, since), nil
	})

	w.RegisterSubscription("messenger", func(ctx *was.Ctx, call was.FieldCall) ([]pylon.Topic, error) {
		return []pylon.Topic{MailboxTopic(ctx.Viewer)}, nil
	})

	w.RegisterPayload(AppMessenger, func(ctx *was.Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		obj, err := ctx.Reader().ObjectGet(ref)
		if err != nil {
			return nil, err
		}
		return a.payloadFromObj(obj, ev.Seq), nil
	})
	return a
}

func (a *Messenger) payloadFromObj(obj tao.Object, seq uint64) MessagePayload {
	author, _ := strconv.ParseUint(obj.Data["author"], 10, 64)
	thread, _ := strconv.ParseUint(obj.Data["thread"], 10, 64)
	return MessagePayload{Seq: seq, Thread: thread, Author: author, Text: obj.Data["text"]}
}

// appendToMailbox assigns the next sequence number and stores the mailbox
// association in TAO (assoc data = seq).
func (a *Messenger) appendToMailbox(ctx *was.Ctx, member socialgraph.UserID, ref tao.ObjID) uint64 {
	a.mu.Lock()
	mb := a.mailbox[member]
	if mb == nil {
		anchor := ctx.Srv.TAO.ObjectAdd("mailbox", map[string]string{
			"owner": strconv.FormatUint(uint64(member), 10),
		})
		mb = &mailboxState{ref: anchor}
		a.mailbox[member] = mb
	}
	mb.nextSeq++
	seq := mb.nextSeq
	anchor := mb.ref
	a.mu.Unlock()
	ctx.Srv.TAO.AssocAdd(anchor, "mailbox_msg", ref, ctx.Now, strconv.FormatUint(seq, 10))
	return seq
}

// mailboxSince reads messages with seq > since, oldest first.
//
// This read deliberately stays on the TAO LEADER, not the region-local
// follower (ctx.Reader()): it is the reliable catch-up path that closes
// delivery gaps after failover, and a follower stale by one replication
// lag could silently drop the most recent messages — turning the gap-free
// resume guarantee into a best-effort one. Payload resolution of
// individual (immutable, created-once) message objects is safe on
// followers; the authoritative mailbox index is not.
func (a *Messenger) mailboxSince(ctx *was.Ctx, owner socialgraph.UserID, since uint64) []MessagePayload {
	a.mu.Lock()
	mb := a.mailbox[owner]
	a.mu.Unlock()
	if mb == nil {
		return nil
	}
	assocs := ctx.Srv.TAO.AssocRange(mb.ref, "mailbox_msg", 0, 0) // newest first
	out := make([]MessagePayload, 0, len(assocs))
	for i := len(assocs) - 1; i >= 0; i-- { // reverse to oldest-first
		seq, _ := strconv.ParseUint(assocs[i].Data, 10, 64)
		if seq <= since {
			continue
		}
		obj, err := ctx.Srv.TAO.ObjectGet(assocs[i].ID2)
		if err != nil {
			continue
		}
		out = append(out, a.payloadFromObj(obj, seq))
	}
	return out
}

// Name implements brass.Application.
func (a *Messenger) Name() string { return AppMessenger }

type messengerStream struct {
	lastSeq uint64
	// topic is the stream's resolved mailbox topic — the key it logs
	// deliveries and serves cursor catch-ups under when the host's
	// durable log is enabled for Messenger.
	topic pylon.Topic
}

type messengerInstance struct {
	app *Messenger
	rt  *brass.Runtime
}

// NewInstance implements brass.Application.
func (a *Messenger) NewInstance(rt *brass.Runtime) brass.AppInstance {
	return &messengerInstance{app: a, rt: rt}
}

func (in *messengerInstance) OnStreamOpen(st *brass.Stream) error {
	topics, err := in.rt.ResolveSubscription(st.Viewer, st.Header(burst.HdrSubscription))
	if err != nil {
		return err
	}
	state := &messengerStream{}
	if resume := st.Header(burst.HdrResumeSeq); resume != "" {
		if seq, err := strconv.ParseUint(resume, 10, 64); err == nil {
			state.lastSeq = seq
		}
	}
	st.State = state
	for _, t := range topics {
		if err := st.AddTopic(t); err != nil {
			return err
		}
	}
	if len(topics) > 0 {
		state.topic = topics[0]
	}
	if in.rt.LogEnabled() && state.topic != "" {
		in.rt.LogOpen(state.topic)
		// Cursor resume: replay the missed suffix from the host's durable
		// log — gap-free, no backend read. An expired (or malformed)
		// cursor is NEVER repaired into a fabricated one; the stream falls
		// through to the WAS resync below instead.
		if cur := st.Header(burst.HdrCursor); cur != "" {
			if in.logCatchUp(st, state, cur) {
				return nil
			}
		}
	}
	// Catch-up: deliver everything the device missed while disconnected
	// (the device resubscribed with the last sequence number it had).
	in.catchUp(st, state)
	return nil
}

// logCatchUp serves a resume from the durable log. It handles the two
// input-only sentinels ("live" skips the backlog, "earliest" replays the
// whole retained window) and concrete "epoch.seq" cursors, pushes the
// gap-free suffix as ONE catch-up batch (bypassing per-stream admission —
// see Stream.PushCatchUp), and persists the advanced resume state in one
// rewrite frame. Returns false when the log cannot prove continuity; the
// caller then falls back to the WAS.
func (in *messengerInstance) logCatchUp(st *brass.Stream, state *messengerStream, raw string) bool {
	var c durlog.Cursor
	switch raw {
	case durlog.SentinelLive:
		tail, ok := in.rt.LogTail(state.topic)
		if !ok {
			return false
		}
		if tail.Seq > state.lastSeq {
			state.lastSeq = tail.Seq
		}
		in.rewriteResumeState(st, state, tail)
		return true
	case durlog.SentinelEarliest:
		e, ok := in.rt.LogEarliest(state.topic)
		if !ok {
			return false
		}
		c = e
	default:
		p, ok := durlog.Parse(raw)
		if !ok {
			return false
		}
		c = p
	}
	entries, next, err := in.rt.LogRead(state.topic, c)
	if err != nil {
		return false // expired: fall back to WAS resync, never fabricate
	}
	deltas := make([]burst.Delta, 0, len(entries))
	for _, e := range entries {
		if e.Seq <= state.lastSeq {
			continue
		}
		deltas = append(deltas, burst.PayloadDelta(e.Seq, e.Payload))
	}
	if len(deltas) > 0 {
		if st.PushCatchUp(deltas...) != nil {
			return false
		}
	}
	if next.Seq > state.lastSeq {
		state.lastSeq = next.Seq
	}
	in.rewriteResumeState(st, state, next)
	return true
}

// rewriteResume persists the stream's resume state after a delivery. With
// the durable log enabled both tokens (WAS sequence + log cursor) travel in
// one rewrite frame; without it, only the legacy sequence field.
func (in *messengerInstance) rewriteResume(st *brass.Stream, state *messengerStream) {
	if in.rt.LogEnabled() && state.topic != "" {
		if tail, ok := in.rt.LogTail(state.topic); ok {
			in.rewriteResumeState(st, state, tail)
			return
		}
	}
	_ = st.RewriteHeaderField(burst.HdrResumeSeq, strconv.FormatUint(state.lastSeq, 10))
}

// rewriteResumeState writes HdrResumeSeq and HdrCursor in a SINGLE rewrite
// frame: a failover between two separate single-field rewrites could strand
// a stream carrying a seq and a cursor from different moments, and the
// resubscribe would resume from an inconsistent pair.
func (in *messengerInstance) rewriteResumeState(st *brass.Stream, state *messengerStream, c durlog.Cursor) {
	h := st.Request().Header.Clone()
	if h == nil {
		h = burst.Header{}
	}
	h[burst.HdrResumeSeq] = strconv.FormatUint(state.lastSeq, 10)
	h[burst.HdrCursor] = c.String()
	_ = st.Rewrite(h, nil)
}

// catchUp polls the mailbox for messages after state.lastSeq and pushes
// them in order.
func (in *messengerInstance) catchUp(st *brass.Stream, state *messengerStream) {
	raw, err := in.rt.Query(st.Viewer, fmt.Sprintf("mailboxSince(seq: %d)", state.lastSeq))
	if err != nil {
		return
	}
	var msgs []MessagePayload
	if err := json.Unmarshal(raw, &msgs); err != nil {
		return
	}
	for _, m := range msgs {
		if m.Seq <= state.lastSeq {
			continue
		}
		b, _ := json.Marshal(m)
		if state.topic != "" {
			// The log records every delivery decision, including the ones
			// made from a WAS read: the next resume on this topic replays
			// them from the edge instead.
			in.rt.LogAppend(state.topic, m.Seq, b)
		}
		if st.PushPayload(m.Seq, b) == nil {
			state.lastSeq = m.Seq
		}
	}
	in.rewriteResume(st, state)
}

func (in *messengerInstance) OnStreamClose(st *brass.Stream, reason string) { st.State = nil }

func (in *messengerInstance) OnEvent(ev pylon.Event) {
	for _, st := range in.rt.Instance().StreamsForTopic(ev.Topic) {
		state, ok := st.State.(*messengerStream)
		if !ok {
			continue
		}
		switch {
		case ev.Seq <= state.lastSeq:
			// Duplicate (e.g. Pylon patch-forwarding): drop.
			st.Filtered()
		case ev.Seq == state.lastSeq+1:
			// In order: fetch and push. The log append happens BEFORE the
			// push and regardless of its admission outcome: Push reports
			// success even when the per-stream bucket sheds the payload, so
			// the log is what makes a shed delta recoverable by the
			// device's later cursor resume.
			payload, err := st.FetchPayload(ev)
			if err != nil {
				st.Filtered()
				continue
			}
			in.rt.LogAppend(ev.Topic, ev.Seq, payload)
			if st.PushPayloadFor(ev, ev.Seq, payload) == nil {
				state.lastSeq = ev.Seq
				in.rewriteResume(st, state)
			}
		default:
			// Gap: a prior event was dropped somewhere. The BRASS
			// repairs it from the mailbox so the device never sees
			// the hole (paper §4: "BRASS will recover the dropped
			// message so the device does not have to").
			in.catchUp(st, state)
		}
	}
}

func (in *messengerInstance) OnAck(st *brass.Stream, seq uint64) {
	// Device-acknowledged delivery; state is already tracked via lastSeq.
	// Acks exist so BRASSes can implement retransmission policies; the
	// mailbox makes retransmission a catch-up query here.
}

var _ brass.Application = (*Messenger)(nil)
