package pylon

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bladerunner/internal/kvstore"
	"bladerunner/internal/sim"
)

// countingKV returns a cluster whose nodes count per-replica "view" ops —
// the reads the subscriber cache is supposed to eliminate.
func countingKV(t *testing.T) (*kvstore.Cluster, *atomic.Int64) {
	t.Helper()
	regions := []string{"us", "eu", "ap"}
	var views atomic.Int64
	nodes := make([]*kvstore.Node, 6)
	for i := range nodes {
		nodes[i] = kvstore.NewNode(fmt.Sprintf("kv%d", i), regions[i%3])
		nodes[i].SetOpHook(func(op, key string) error {
			if op == "view" {
				views.Add(1)
			}
			return nil
		})
	}
	return kvstore.MustNewCluster(nodes, 3), &views
}

// TestPublishServesFromCacheUntilInvalidated is the core fast-path
// contract: after one priming publish, repeat publishes to an unchanged
// topic do zero replica reads; any subscription mutation forces exactly one
// re-read.
func TestPublishServesFromCacheUntilInvalidated(t *testing.T) {
	kv, views := countingKV(t)
	s := MustNew(DefaultConfig(), kv)
	h1, h2 := &fakeHost{id: "h1"}, &fakeHost{id: "h2"}
	s.RegisterHost(h1)
	s.RegisterHost(h2)
	topic := Topic("/LVC/hot")
	if err := s.Subscribe(topic, "h1"); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Publish(Event{Topic: topic}); err != nil { // prime
		t.Fatal(err)
	}
	base := views.Load()
	for i := 0; i < 50; i++ {
		n, err := s.Publish(Event{Topic: topic})
		if err != nil || n != 1 {
			t.Fatalf("publish %d = %d, %v", i, n, err)
		}
	}
	if got := views.Load(); got != base {
		t.Fatalf("cached publishes did %d replica reads, want 0", got-base)
	}
	if s.SubCacheHits.Value() != 50 {
		t.Errorf("SubCacheHits = %d, want 50", s.SubCacheHits.Value())
	}

	// A subscribe invalidates: the next publish re-reads and sees h2.
	if err := s.Subscribe(topic, "h2"); err != nil {
		t.Fatal(err)
	}
	base = views.Load()
	n, err := s.Publish(Event{Topic: topic})
	if err != nil || n != 2 {
		t.Fatalf("post-subscribe publish = %d, %v; want 2 (h2 included)", n, err)
	}
	if views.Load() == base {
		t.Fatal("version bump did not force a replica re-read")
	}
	if s.SubCacheStale.Value() == 0 {
		t.Error("SubCacheStale never counted")
	}
	// And the refreshed entry serves the next publish without reads.
	base = views.Load()
	if _, err := s.Publish(Event{Topic: topic}); err != nil {
		t.Fatal(err)
	}
	if views.Load() != base {
		t.Error("refreshed entry not served from cache")
	}

	// An unsubscribe invalidates the same way.
	if err := s.Unsubscribe(topic, "h2"); err != nil {
		t.Fatal(err)
	}
	n, err = s.Publish(Event{Topic: topic})
	if err != nil || n != 1 {
		t.Fatalf("post-unsubscribe publish = %d, %v; want 1", n, err)
	}
}

// TestSubCacheTTLForcesPeriodicRefresh pins the periodic-refresh half of
// the invalidation contract: even with no version change, a cached entry
// older than the TTL re-reads the replicas.
func TestSubCacheTTLForcesPeriodicRefresh(t *testing.T) {
	kv, views := countingKV(t)
	clk := sim.NewManualClock(time.Unix(1700000000, 0))
	cfg := DefaultConfig()
	cfg.Clock = clk
	cfg.SubCacheTTL = time.Second
	s := MustNew(cfg, kv)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	topic := Topic("/t")
	if err := s.Subscribe(topic, "h"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(Event{Topic: topic}); err != nil { // prime
		t.Fatal(err)
	}
	base := views.Load()
	if _, err := s.Publish(Event{Topic: topic}); err != nil {
		t.Fatal(err)
	}
	if views.Load() != base {
		t.Fatal("within-TTL publish read replicas")
	}
	clk.Advance(2 * time.Second) // past the TTL even with jitter
	if _, err := s.Publish(Event{Topic: topic}); err != nil {
		t.Fatal(err)
	}
	if views.Load() == base {
		t.Fatal("expired entry served without a replica re-read")
	}
}

// TestSubCacheDisabled pins the opt-out: SubCacheSize=0 reads replicas on
// every publish, exactly the pre-fast-path behaviour.
func TestSubCacheDisabled(t *testing.T) {
	kv, views := countingKV(t)
	cfg := DefaultConfig()
	cfg.SubCacheSize = 0
	s := MustNew(cfg, kv)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	topic := Topic("/t")
	if err := s.Subscribe(topic, "h"); err != nil {
		t.Fatal(err)
	}
	before := views.Load()
	for i := 0; i < 5; i++ {
		if _, err := s.Publish(Event{Topic: topic}); err != nil {
			t.Fatal(err)
		}
	}
	if got := views.Load() - before; got < 5 {
		t.Fatalf("uncached publishes did %d replica reads, want >= 5", got)
	}
	if s.SubCacheHits.Value() != 0 {
		t.Error("cache metrics moved with cache disabled")
	}
}

// TestRemovedHostNeverDeliveredAfterRemoveHost pins the delivery guarantee
// the DESIGN doc leans on: after RemoveHost returns, no publish — cached
// subscriber list or not — delivers to the removed host, because delivery
// goes through the host snapshot, not the cache.
func TestRemovedHostNeverDeliveredAfterRemoveHost(t *testing.T) {
	kv, _ := countingKV(t)
	s := MustNew(DefaultConfig(), kv)
	h1, h2 := &fakeHost{id: "h1"}, &fakeHost{id: "h2"}
	s.RegisterHost(h1)
	s.RegisterHost(h2)
	topic := Topic("/LVC/hot")
	if err := s.Subscribe(topic, "h1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe(topic, "h2"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(Event{Topic: topic}); err != nil { // prime: cache holds h1+h2
		t.Fatal(err)
	}

	s.RemoveHost(h2.id)
	countAtRemove := h2.count()
	for i := 0; i < 20; i++ {
		if _, err := s.Publish(Event{Topic: topic}); err != nil {
			t.Fatal(err)
		}
	}
	if got := h2.count(); got != countAtRemove {
		t.Fatalf("removed host received %d deliveries after RemoveHost", got-countAtRemove)
	}
	// h1 is still live and must keep receiving.
	if h1.count() < 20 {
		t.Fatalf("live host received %d < 20 deliveries", h1.count())
	}
}

// TestSubscriberVisibleWithinOnePublishRound pins the staleness bound: a
// Subscribe that returned before a Publish started is seen by that publish
// (the version bump happens after the KV write, so the publish either hits
// a fresh entry or re-reads).
func TestSubscriberVisibleWithinOnePublishRound(t *testing.T) {
	kv, _ := countingKV(t)
	s := MustNew(DefaultConfig(), kv)
	topic := Topic("/t")
	for i := 0; i < 20; i++ {
		h := &fakeHost{id: fmt.Sprintf("h%d", i)}
		s.RegisterHost(h)
		if err := s.Subscribe(topic, h.id); err != nil {
			t.Fatal(err)
		}
		n, err := s.Publish(Event{Topic: topic})
		if err != nil {
			t.Fatal(err)
		}
		if n != i+1 {
			t.Fatalf("publish after %d subscribes reached %d hosts", i+1, n)
		}
	}
}

// TestChurnRacingPublishes drives concurrent Subscribe/Unsubscribe/
// RemoveHost/RegisterHost against a storm of publishes. Run under -race
// this checks the lock-free publish path; the assertions check the
// end-state converges (a final publish reaches exactly the surviving
// subscribers) and that no delivery ever reached a host after its
// RemoveHost completed.
func TestChurnRacingPublishes(t *testing.T) {
	kv, _ := countingKV(t)
	s := MustNew(DefaultConfig(), kv)
	topic := Topic("/LVC/churn")

	// A stable host that must never miss more than the in-flight round.
	stable := &fakeHost{id: "stable"}
	s.RegisterHost(stable)
	if err := s.Subscribe(topic, "stable"); err != nil {
		t.Fatal(err)
	}

	var (
		stop    atomic.Bool
		removed []*fakeHost
		remMu   sync.Mutex
	)
	var wg sync.WaitGroup

	// Churners: register/subscribe/unsubscribe/remove transient hosts.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				h := &fakeHost{id: fmt.Sprintf("churn-%d-%d", g, i)}
				s.RegisterHost(h)
				if err := s.Subscribe(topic, h.id); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := s.Unsubscribe(topic, h.id); err != nil {
						t.Error(err)
						return
					}
				}
				s.RemoveHost(h.id)
				remMu.Lock()
				removed = append(removed, h)
				remMu.Unlock()
			}
		}(g)
	}

	// Publishers: hammer the topic while the set churns.
	var published atomic.Int64
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := s.Publish(Event{Topic: topic}); err != nil {
					t.Error(err)
					return
				}
				published.Add(1)
			}
		}()
	}

	for published.Load() < 2000 {
		if t.Failed() {
			break
		}
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// With all publishers drained, publishes that START after RemoveHost
	// returned must deliver nothing to removed hosts (only publishes already
	// in flight at removal time may have reached them).
	counts := make(map[string]int, len(removed))
	for _, h := range removed {
		counts[h.id] = h.count()
	}
	before := stable.count()
	for i := 0; i < 10; i++ {
		n, err := s.Publish(Event{Topic: topic})
		if err != nil {
			t.Fatal(err)
		}
		// The stable subscriber converges: every post-churn publish reaches
		// exactly it.
		if n != 1 {
			t.Fatalf("post-churn publish reached %d hosts, want 1 (stable)", n)
		}
	}
	if stable.count() != before+10 {
		t.Fatalf("stable host saw %d of 10 post-churn publishes", stable.count()-before)
	}
	for _, h := range removed {
		if got := h.count(); got != counts[h.id] {
			t.Fatalf("removed host %s delivered %d events after publishers drained", h.id, got-counts[h.id])
		}
	}
	// The stable host never missed a publish: it was subscribed before the
	// first publish and never churned.
	if int64(stable.count()) < published.Load() {
		t.Fatalf("stable host saw %d of %d churn-phase publishes", stable.count(), published.Load())
	}
}
