package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoLockAcrossBlock flags sync.Mutex/sync.RWMutex locks held across an
// operation that can block indefinitely: a channel send or receive, a
// select, a range over a channel, or a call known to block (WaitGroup.Wait,
// sim.Sleep, time.Sleep). Pylon's contract is that delivery never blocks
// fan-out and BRASS instances drain their mailboxes promptly; a lock held
// across a channel operation couples lock-holders to channel peers and is
// how the AP delivery path deadlocks under load.
//
// The analysis is a conservative, syntactic walk over each function body:
// it tracks which lock expressions (rendered as source text, e.g. "h.mu")
// are held at each statement, treating `defer mu.Unlock()` as holding the
// lock to the end of the function (which is exactly when a later channel
// op is a real hazard). Branches that terminate (return/branch/panic) keep
// their lock-state changes to themselves; fall-through branches propagate
// theirs. Function literals are separate functions with their own empty
// lock state.
//
// On top of the per-function walk, the rule is call-chain aware: a call
// made while a lock is held is checked against the whole-module blocking
// summaries (Program.BlockFacts) — a critical section calling a helper
// that receives on a channel two hops down is reported at the call site
// with the chain down to the blocking operation. Interface calls check
// every module implementation; calls through function values are not
// resolved (the literal's own body is still checked with its own lock
// state).
type NoLockAcrossBlock struct {
	// ModPath qualifies module-internal blocking helpers (sim.Sleep).
	ModPath string
}

func (r *NoLockAcrossBlock) Name() string { return "no-lock-across-block" }

func (r *NoLockAcrossBlock) Doc() string {
	return "sync.Mutex/RWMutex must not be held across channel operations, select, or blocking calls"
}

var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

var unlockMethods = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

func (r *NoLockAcrossBlock) blockingCalls() map[string]string {
	return map[string]string{
		"(*sync.WaitGroup).Wait":          "sync.WaitGroup.Wait",
		"time.Sleep":                      "time.Sleep",
		r.ModPath + "/internal/sim.Sleep": "sim.Sleep",
	}
}

func (r *NoLockAcrossBlock) Check(c *Context) {
	w := &lockWalker{c: c, blocking: r.blockingCalls()}
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.scanStmts(fn.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				w.scanStmts(fn.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
}

type lockWalker struct {
	c        *Context
	blocking map[string]string
}

// lockRecv returns the rendered receiver of a lock/unlock call, e.g.
// "h.mu" for h.mu.Lock(). For promoted methods (type embeds sync.Mutex and
// the code calls s.Lock()) the receiver is the whole selector base.
func lockRecv(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return "<lock>"
}

// applyLockOp updates held if expr is a Lock/Unlock call; it reports
// whether it was one.
func (w *lockWalker) applyLockOp(expr ast.Expr, held map[string]token.Pos) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	name := calleeFullName(w.c.Pkg.Info, call)
	switch {
	case lockMethods[name]:
		held[lockRecv(call)] = call.Pos()
		return true
	case unlockMethods[name]:
		delete(held, lockRecv(call))
		return true
	}
	return false
}

func (w *lockWalker) reportHeld(pos token.Pos, what string, held map[string]token.Pos) {
	for recv, at := range held {
		w.c.Reportf(pos, "%s while holding %s (locked at %s)",
			what, recv, w.c.Fset.Position(at))
	}
}

// checkExpr searches an expression tree for blocking operations performed
// while locks are held. It does not descend into function literals — those
// bodies are analyzed as separate functions.
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.reportHeld(x.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if what, ok := w.blocking[calleeFullName(w.c.Pkg.Info, x)]; ok {
				w.reportHeld(x.Pos(), "blocking call to "+what, held)
			} else {
				w.checkCallBlocks(x, held)
			}
		}
		return true
	})
}

// checkCallBlocks consults the whole-module blocking summaries for a call
// made while a lock is held: known-blocking externals (net.Conn I/O) and
// module functions whose transitive summary contains a channel operation
// are reported with the call path down to the blocking site.
func (w *lockWalker) checkCallBlocks(call *ast.CallExpr, held map[string]token.Pos) {
	prog := w.c.Prog
	if prog == nil {
		return
	}
	f := calleeFunc(w.c.Pkg.Info, call)
	if f == nil {
		return
	}
	f = origin(f)
	name := f.FullName()
	if lockMethods[name] || unlockMethods[name] {
		return
	}
	if why, ok := blockingByName[name]; ok {
		w.reportHeld(call.Pos(), "call to "+shortFuncName(f)+", which "+why, held)
		return
	}
	var targets []*FuncNode
	if isInterfaceMethod(f) {
		targets = prog.implementations(f)
	} else if t := prog.Node(f); t != nil {
		targets = []*FuncNode{t}
	}
	for _, t := range targets {
		if facts := prog.BlockFacts(t); len(facts) > 0 {
			w.reportHeld(call.Pos(),
				"call to "+t.Name()+", which blocks: "+facts[0].Desc+" at "+prog.shortPos(facts[0].Pos), held)
			return
		}
	}
}

func (w *lockWalker) scanStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, st := range stmts {
		w.scanStmt(st, held)
	}
}

// scanBranch analyzes a branch body with a copy of held; if the branch can
// fall through to the code after it, its lock-state changes are adopted.
func (w *lockWalker) scanBranch(stmts []ast.Stmt, held map[string]token.Pos) {
	clone := make(map[string]token.Pos, len(held))
	for k, v := range held {
		clone[k] = v
	}
	w.scanStmts(stmts, clone)
	if !terminates(stmts) {
		for k := range held {
			delete(held, k)
		}
		for k, v := range clone {
			held[k] = v
		}
	}
}

// terminates reports whether control cannot fall off the end of stmts.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(last.List)
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *lockWalker) scanStmt(st ast.Stmt, held map[string]token.Pos) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if w.applyLockOp(s.X, held) {
			return
		}
		w.checkExpr(s.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.reportHeld(s.Arrow, "channel send", held)
		}
		w.checkExpr(s.Value, held)
	case *ast.SelectStmt:
		// A select with a default clause never blocks; the non-blocking
		// send/receive-under-lock idiom is legitimate and used by the
		// BURST client and device (send can't race the close because both
		// happen under the same lock).
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if len(held) > 0 && !hasDefault {
			w.reportHeld(s.Select, "select", held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.scanBranch(cc.Body, held)
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() means the lock is held for the rest of the
		// function: keep it in held so later blocking ops are flagged.
		// Other deferred calls only evaluate their arguments now.
		if name := calleeFullName(w.c.Pkg.Info, s.Call); !unlockMethods[name] {
			for _, e := range s.Call.Args {
				w.checkExpr(e, held)
			}
		}
	case *ast.GoStmt:
		for _, e := range s.Call.Args {
			w.checkExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.scanBranch(s.Body.List, held)
		if s.Else != nil {
			w.scanBranch([]ast.Stmt{s.Else}, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.scanBranch(s.Body.List, held)
	case *ast.RangeStmt:
		if len(held) > 0 {
			if tv, ok := w.c.Pkg.Info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.reportHeld(s.For, "range over channel", held)
				}
			}
		}
		w.checkExpr(s.X, held)
		w.scanBranch(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, held)
		}
		w.checkExpr(s.Tag, held)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.scanBranch(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.scanBranch(cc.Body, held)
			}
		}
	case *ast.BlockStmt:
		w.scanStmts(s.List, held)
	case *ast.LabeledStmt:
		w.scanStmt(s.Stmt, held)
	}
}
