// Package faults is Bladerunner's deterministic fault-injection plane.
//
// The paper's §4 failure axioms — every participant learns of failures via
// flow_status, and streams are repairable from stored, rewritten requests —
// are only worth anything if they can be exercised. This package provides
// the machinery to do that reproducibly:
//
//   - FaultNetwork wraps edge.PipeNetwork and applies faults to
//     *established* connections, not just new dials: per-link latency
//     distributions, probabilistic corrupt-free cuts, directional
//     blackholes (asymmetric partitions), slow-reader stalls, and hard
//     cuts that sever live pipes.
//   - Plan is a scheduled fault timeline ("at T+x cut pop-0, at T+y heal")
//     driven through an injected sim.Scheduler, so the same plan replays
//     identically under the wall clock and under the discrete-event engine.
//   - Backoff is the shared jittered-exponential retry policy adopted by
//     the recovery paths (device reconnect/resubscribe, the BRASS host
//     subscription manager), seeded so chaos runs are reproducible and
//     jittered so mass disconnects do not re-dial in lockstep — the
//     reconnection-storm shape that dominates tail behaviour in
//     million-user messaging systems.
//
// All randomness is seeded math/rand and all time flows through injected
// sim.Clock/sim.Scheduler: the same seed yields the same fault schedule.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bladerunner/internal/metrics"
)

// BackoffPolicy parameterizes a jittered exponential backoff. The zero
// value of any field is replaced by its default, so callers can set only
// what they care about.
type BackoffPolicy struct {
	// Base is the delay before the first retry (default 50ms).
	Base time.Duration
	// Max caps the raw (pre-jitter) delay (default 32×Base).
	Max time.Duration
	// Multiplier is the per-attempt growth factor (default 2).
	Multiplier float64
	// Jitter is the randomized fraction of each delay, in [0,1]: the
	// delay is drawn uniformly from [d·(1−Jitter), d·(1+Jitter)].
	// Defaults to 0.5. Use NoJitter for a fixed-delay policy.
	Jitter float64
	// NoJitter disables jitter entirely (Jitter 0 means "default", so a
	// deliberate fixed-delay policy needs an explicit flag).
	NoJitter bool
}

// DefaultBackoff returns the policy used across the recovery paths.
func DefaultBackoff() BackoffPolicy {
	return BackoffPolicy{Base: 50 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
}

// normalized fills zero fields with their defaults.
func (p BackoffPolicy) normalized() BackoffPolicy {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Max <= 0 {
		p.Max = 32 * p.Base
	}
	if p.Max < p.Base {
		p.Max = p.Base
	}
	switch {
	case p.NoJitter || p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.5
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// String renders the normalized policy.
func (p BackoffPolicy) String() string {
	n := p.normalized()
	return fmt.Sprintf("backoff{base=%v max=%v mult=%.2g jitter=%.2g}",
		n.Base, n.Max, n.Multiplier, n.Jitter)
}

// Backoff is one retry sequence's state: each Next call returns the next
// jittered delay and advances the attempt counter; Reset rewinds after a
// success. Safe for concurrent use. Child backoffs (per-stream, per-topic)
// share the parent's counters so a component can expose one set of
// retry/saturation metrics.
type Backoff struct {
	mu      sync.Mutex
	policy  BackoffPolicy
	rng     *rand.Rand
	attempt int

	retries     *metrics.Counter
	saturations *metrics.Counter
}

// NewBackoff builds a Backoff with the given (normalized) policy and seed.
func NewBackoff(p BackoffPolicy, seed int64) *Backoff {
	return &Backoff{
		policy:      p.normalized(),
		rng:         rand.New(rand.NewSource(seed)),
		retries:     &metrics.Counter{},
		saturations: &metrics.Counter{},
	}
}

// Child derives an independent retry sequence (own attempt counter and RNG
// stream, derived deterministically from seed+salt) that shares the
// parent's metrics counters.
func (b *Backoff) Child(salt int64) *Backoff {
	b.mu.Lock()
	defer b.mu.Unlock()
	return &Backoff{
		policy:      b.policy,
		rng:         rand.New(rand.NewSource(b.rng.Int63() ^ salt)),
		retries:     b.retries,
		saturations: b.saturations,
	}
}

// Next returns the delay to wait before the next attempt and advances the
// attempt counter.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	raw := float64(b.policy.Base)
	for i := 0; i < b.attempt; i++ {
		raw *= b.policy.Multiplier
		if raw >= float64(b.policy.Max) {
			break
		}
	}
	if raw >= float64(b.policy.Max) {
		raw = float64(b.policy.Max)
		b.saturations.Inc()
	}
	b.attempt++
	b.retries.Inc()
	d := raw
	if j := b.policy.Jitter; j > 0 {
		// Uniform on [raw·(1−j), raw·(1+j)]: same mean as the fixed
		// schedule, but a fleet of backoffs decorrelates.
		d = raw * (1 - j + 2*j*b.rng.Float64())
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Reset rewinds the attempt counter after a successful attempt.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Attempt returns the number of Next calls since the last Reset.
func (b *Backoff) Attempt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Retries returns the total retry delays handed out by this backoff and
// all backoffs sharing its counters (children).
func (b *Backoff) Retries() int64 { return b.retries.Value() }

// Saturations returns how many delays hit the policy's Max cap — sustained
// saturation means the outage outlasted the whole backoff ramp.
func (b *Backoff) Saturations() int64 { return b.saturations.Value() }
