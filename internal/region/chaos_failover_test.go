// Satellite regression suite for BURST rewrite_request under partial
// partition: a stream whose home region dies is rewritten to a second
// region; when THAT rewrite target becomes unreachable too, a further
// rewrite lands it in a third region — with mailbox sequence continuity
// and a stable trace-stream identity throughout. Table-driven and seeded
// (BR_CHAOS_SEED), run by CI's chaos matrix alongside internal/faults.
package region_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/burst"
	"bladerunner/internal/core"
	"bladerunner/internal/device"
	"bladerunner/internal/faults"
	"bladerunner/internal/region"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
)

func seedFromEnv(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("BR_CHAOS_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("BR_CHAOS_SEED=%q: %v", v, err)
		}
		return seed
	}
	return 1
}

func waitOr(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// seqRecorder drains a stream's channels, tracking received sequences.
type seqRecorder struct {
	mu   sync.Mutex
	seqs map[uint64]bool
	done sync.WaitGroup
}

func record(st *device.Stream) *seqRecorder {
	r := &seqRecorder{seqs: make(map[uint64]bool)}
	r.done.Add(2)
	go func() {
		defer r.done.Done()
		for d := range st.Updates {
			var m apps.MessagePayload
			_ = json.Unmarshal(d.Payload, &m)
			r.mu.Lock()
			r.seqs[m.Seq] = true
			r.mu.Unlock()
		}
	}()
	go func() {
		defer r.done.Done()
		for range st.Flow {
		}
	}()
	return r
}

func (r *seqRecorder) hasAll(n uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for s := uint64(1); s <= n; s++ {
		if !r.seqs[s] {
			return false
		}
	}
	return true
}

// TestChaosRewriteUnderPartialPartition drives one receiver stream through
// one or two region failures. Each case cuts the stream's CURRENT serving
// region (resolved live from the sticky header), so the double-failover
// case exercises exactly the paper's hard path: the first rewrite's target
// later becomes unreachable and a second rewrite to the remaining region
// must succeed, with every mailbox sequence 1..K delivered exactly where
// the device expects it and the trace identity never changing.
func TestChaosRewriteUnderPartialPartition(t *testing.T) {
	baseSeed := seedFromEnv(t)
	cases := []struct {
		name string
		// failovers is how many times the serving region is cut under the
		// stream. 1 = simple geo-failover; 2 = rewrite target unreachable,
		// third region must take over.
		failovers int
	}{
		{name: "single-failover", failovers: 1},
		{name: "double-failover-to-third-region", failovers: 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seed := baseSeed*10 + int64(tc.failovers)
			goroutinesBefore := runtime.NumGoroutine()

			cfg := core.DefaultConfig()
			cfg.Regions = []string{"us-east", "eu-west", "ap-south"}
			cfg.POPs = 3
			cfg.Graph.Users = 100
			cfg.Graph.BlockProb = 0
			cfg.Geo = &region.Config{
				DefaultLatency: sim.Uniform{Lo: 50 * time.Microsecond, Hi: 300 * time.Microsecond},
				DefaultReplLag: sim.Uniform{Lo: 500 * time.Microsecond, Hi: 2 * time.Millisecond},
				Seed:           seed,
			}
			c := core.MustNewCluster(cfg, nil)
			fn := faults.NewFaultNetwork(c.Net, nil, seed)
			rf := faults.NewRegionFaults(fn, c.Gate, c.Topo)

			// Author homed ap-south (92 % 3 == 2): with the receiver's home
			// (eu-west) cut first and us-east the deterministic first
			// failover target, ap-south is the one region never cut in
			// either case — the author must outlive the schedule.
			author := c.NewDevice(socialgraph.UserID(92))
			uid := socialgraph.UserID(13) // home eu-west
			recv := c.NewDeviceVia(fn, device.Config{
				User:        uid,
				Backoff:     faults.BackoffPolicy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond},
				BackoffSeed: seed,
			})
			if err := recv.Connect(); err != nil {
				t.Fatal(err)
			}
			st, err := recv.Subscribe(apps.AppMessenger, "messenger", nil)
			if err != nil {
				t.Fatal(err)
			}
			rec := record(st)
			traceID := st.Request().Header[burst.HdrTraceStream]

			out, err := author.Mutate(fmt.Sprintf(`createThread(members: "92,%d")`, uid))
			if err != nil {
				t.Fatal(err)
			}
			var thread uint64
			_ = json.Unmarshal(out, &thread)

			servingRegion := func() string {
				host := st.Request().Header[burst.HdrStickyBRASS]
				if host == "" {
					return ""
				}
				return c.Gate.RegionOf(host)
			}
			waitOr(t, "initial home-region attach", func() bool {
				return servingRegion() == "eu-west"
			})

			var sent uint64
			send := func(label string) {
				t.Helper()
				if _, err := author.Mutate(fmt.Sprintf(
					`sendMessage(threadID: %d, text: "%s")`, thread, label)); err != nil {
					t.Fatal(err)
				}
				sent++
			}

			send("pre-failover")
			waitOr(t, "baseline delivery", func() bool { return rec.hasAll(sent) })

			cutSoFar := map[string]bool{}
			for hop := 1; hop <= tc.failovers; hop++ {
				target := servingRegion()
				if target == "" || cutSoFar[target] {
					t.Fatalf("hop %d: no live serving region to cut (got %q)", hop, target)
				}
				rf.CutRegion(target)
				cutSoFar[target] = true

				waitOr(t, fmt.Sprintf("hop %d: rewrite to a healthy region", hop), func() bool {
					r := servingRegion()
					return r != "" && !cutSoFar[r] && c.Topo.RegionUp(r)
				})
				// Seq continuity after every hop: everything sent so far,
				// plus one sent THROUGH the new serving region, arrives
				// with no gap.
				send(fmt.Sprintf("after-hop-%d", hop))
				waitOr(t, fmt.Sprintf("hop %d: gap-free view", hop),
					func() bool { return rec.hasAll(sent) })
			}

			if tc.failovers == 2 {
				// Two of three regions are dark; only ap-south remains.
				if got := servingRegion(); got != "ap-south" {
					t.Errorf("after double failover serving region = %q, want ap-south", got)
				}
			}
			if got := st.Request().Header[burst.HdrTraceStream]; got != traceID {
				t.Errorf("trace identity changed across rewrites: %q → %q", traceID, got)
			}

			recv.Close()
			author.Close()
			rec.done.Wait()
			c.Close()
			waitOr(t, "goroutines drained", func() bool {
				runtime.GC()
				return runtime.NumGoroutine() <= goroutinesBefore+3
			})
		})
	}
}
