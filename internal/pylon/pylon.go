// Package pylon implements Pylon, Bladerunner's deliberately simple
// topic-based pub/sub system (paper §3.1). Pylon has exactly two jobs:
// track which BRASS hosts subscribe to each topic, and fan published update
// events out to those hosts with low latency.
//
// Key properties reproduced from the paper:
//
//   - Subscription state lives in a replicated KV store (internal/kvstore):
//     rendezvous hashing on the topic picks the replicas, one local and the
//     rest in remote regions. Subscription writes are CP (quorum required);
//     delivery is AP (best effort, no guarantees on failure).
//   - On publish, Pylon begins fan-out as soon as the first replica answers
//     with a subscriber list; when the remaining replicas answer, it
//     forwards to any subscribers the first list was missing, and patches
//     replicas that disagree back to a quorum-merged view.
//   - Topics are partitioned across shards mapped onto Pylon servers so
//     load can be rebalanced one shard at a time.
//   - Pylon is content-agnostic: events carry metadata identifying the
//     mutation in TAO, never the data itself (paper §1, unique aspect 3).
//
// Hot-topic fast path: the marquee workload (LiveVideoComments) publishes
// thousands of events to one topic whose subscriber set barely changes, so
// the publish path keeps a versioned subscriber-set cache. Every
// subscription mutation bumps a per-shard version counter; Publish serves
// fan-out from the cache while the version matches (and the TTL holds) and
// falls back to the full staged replica read — first responder, patch
// forward, replica repair — on any version change. Host registry and
// shard→server routing are copy-on-write snapshots, and event-ID assignment
// is striped, so publishes to distinct shards never contend on a lock.
package pylon

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bladerunner/internal/cache"
	"bladerunner/internal/intern"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/metrics"
	"bladerunner/internal/overload"
	"bladerunner/internal/sim"
	"bladerunner/internal/trace"
)

// Topic names an area of interest in the social graph, structured like a
// path: /LVC/videoID, /TI/threadID/uid, /Status/uid.
type Topic string

// Event is a published update event: metadata only, pointing at the data in
// TAO. BRASSes fetch the payload from the WAS when (and only when) they
// decide a client should see it.
type Event struct {
	Topic Topic
	// ID is a unique event id assigned by Pylon at publish time. IDs are
	// unique across all topics and monotonic per shard stripe; they carry
	// no global ordering.
	ID uint64
	// Ref identifies the mutated object in TAO (e.g. the comment id).
	Ref uint64
	// Seq is an optional application-assigned sequence number (used by
	// Messenger-style reliable applications).
	Seq uint64
	// Meta carries application metadata: poster uid, ML quality score,
	// language, etc. It is small by design; cross-region links are a
	// limited resource.
	Meta map[string]string
	// Published is the publish timestamp.
	Published time.Time
	// Origin is the datacenter region the mutation committed in. The
	// region plane fans the event out to its origin region's Pylon
	// synchronously and replicates it to every other region over the
	// modeled inter-region links; empty means the primary region.
	Origin string
	// Trace is the sampled trace context stamped by the WAS (zero when the
	// mutation was not sampled). Pylon and BRASS propagate it unchanged.
	Trace trace.ID
}

// Subscriber is the delivery endpoint for one BRASS host. Deliver must not
// block: Pylon is best-effort, and a slow host must not stall fan-out.
type Subscriber interface {
	ID() string
	Deliver(ev Event)
}

// ErrNoQuorum mirrors kvstore.ErrNoQuorum for subscription writes.
var ErrNoQuorum = kvstore.ErrNoQuorum

// ErrUnknownSubscriber is returned when subscribing an unregistered host.
var ErrUnknownSubscriber = errors.New("pylon: unknown subscriber host")

// eventStripes is the number of independent event-ID counters. Publish
// picks the stripe by shard, so concurrent publishes to different shards
// assign IDs without sharing a cache line. IDs embed the stripe in the low
// byte (ID = seq<<8 | stripe), which keeps them unique across stripes.
const eventStripes = 256

// Config parameterizes the Pylon service.
type Config struct {
	// Shards is the number of topic shards (production: 512K). Shards
	// map onto servers for load accounting.
	Shards int
	// Servers is the number of Pylon front-end servers.
	Servers int
	// SubCacheSize is the capacity (in topics) of the versioned
	// subscriber-set cache on the publish path. 0 disables the cache and
	// restores the read-every-publish behaviour.
	SubCacheSize int
	// SubCacheTTL bounds how long a cached subscriber set may be served
	// without re-reading the replicas even when no version change was
	// observed — the periodic-refresh half of the invalidation contract.
	// <= 0 means entries never expire by age.
	SubCacheTTL time.Duration
	// Clock drives cache TTL expiry and admission-token refill. nil uses
	// the wall clock.
	Clock sim.Clock
	// AdmitRate, when > 0, enables token-bucket admission control on the
	// publish path: sustained publishes beyond this rate (with AdmitBurst
	// of headroom) are shed with ErrShed BEFORE any replica read or
	// fan-out work — the paper's "shed at every hop" applied to Pylon's
	// front door. <= 0 disables admission entirely.
	AdmitRate float64
	// AdmitBurst is the admission bucket capacity (defaults to AdmitRate
	// when 0, i.e. one second of headroom).
	AdmitBurst float64
	// AdmitSeed jitters the initial token level so a fleet of Pylon
	// servers decorrelates deterministically.
	AdmitSeed int64
}

// DefaultConfig returns a test-scale configuration with the subscriber
// cache enabled.
func DefaultConfig() Config {
	return Config{
		Shards:       4096,
		Servers:      8,
		SubCacheSize: 4096,
		SubCacheTTL:  2 * time.Second,
	}
}

// padded is a cache-line-padded atomic counter; slices of these are updated
// from concurrent publishes without false sharing.
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// routeTable is the immutable shard→server routing state, swapped
// atomically as a whole so the publish path reads it without locking.
type routeTable struct {
	up       []bool
	override map[int]int // explicit shard→server reassignments (MoveShard)
	anyUp    bool
}

func (rt *routeTable) serverFor(shard, servers int) int {
	if srv, ok := rt.override[shard]; ok {
		return srv
	}
	return shard % servers
}

func (rt *routeTable) clone() *routeTable {
	n := &routeTable{
		up:       append([]bool(nil), rt.up...),
		override: make(map[int]int, len(rt.override)),
	}
	for k, v := range rt.override {
		n.override[k] = v
	}
	return n
}

func (rt *routeTable) recomputeAnyUp() {
	rt.anyUp = false
	for _, up := range rt.up {
		if up {
			rt.anyUp = true
			return
		}
	}
}

// subEntry is one cached subscriber set: the quorum-merged member list as
// of version ver of the topic's shard, resolved to interned host handles at
// fill time. The fan-out loop then indexes the dense COW dispatch slice
// directly — no per-delivery map lookup, no Member→string conversion.
type subEntry struct {
	ver     uint64
	handles []uint32
}

// Service is the Pylon control plane plus fan-out data plane.
type Service struct {
	cfg Config
	kv  *kvstore.Cluster

	// hosts is the copy-on-write registry of known BRASS hosts; the
	// publish path snapshots it once per fan-out. wmu serializes writers
	// (RegisterHost/RemoveHost and the route-table mutators); readers
	// never take it.
	hosts atomic.Pointer[map[string]Subscriber]
	route atomic.Pointer[routeTable]
	// hostIDs interns BRASS host IDs to dense handles; hostSlots is the
	// matching copy-on-write handle→Subscriber dispatch slice the cached
	// fan-out path indexes instead of hashing host-ID strings. A removed
	// host's slot is nil'd (same wmu-serialized COW discipline as hosts),
	// and re-registration under the same ID reuses the same handle.
	hostIDs   *intern.Table
	hostSlots atomic.Pointer[[]Subscriber]
	wmu       sync.Mutex
	// hostTopics is the reverse index used when a BRASS host fails and
	// all its subscriptions must be removed (paper §4 axiom 1). Guarded
	// by wmu.
	hostTopics map[string]map[Topic]bool

	serverLoad []padded
	eventSeq   []padded // striped event-ID counters

	// shardVer is the per-shard subscription version; every mutation of a
	// topic's subscriber set bumps its shard AFTER the KV write completes,
	// so a publisher that observes the new version is guaranteed to read
	// the new subscriber state. subCache is nil when disabled.
	shardVer []atomic.Uint64
	subCache *cache.LRU[Topic, subEntry]

	// Admit is the publish admission controller (nil when disabled). Its
	// Admitted/Shed counters are the publish-side overload accounting.
	Admit *overload.Admission

	// Metrics.
	Publishes     metrics.Counter
	Deliveries    metrics.Counter
	PatchForwards metrics.Counter // deliveries triggered by late replicas
	Patches       metrics.Counter // replica repair operations
	DroppedNoSub  metrics.Counter // publishes with zero subscribers
	SubCacheHits  metrics.Counter // fan-outs served from the cache
	SubCacheMiss  metrics.Counter // cold or TTL-expired lookups
	SubCacheStale metrics.Counter // entries invalidated by a version bump
	FanoutSize    *metrics.CountHistogram

	// Tracer, when set, closes a pylon.fanout span around each sampled
	// publish. nil (the default) keeps the publish path allocation-free.
	Tracer *trace.Tracer
}

// New builds a Pylon service over the given subscription KV cluster.
func New(cfg Config, kv *kvstore.Cluster) (*Service, error) {
	if cfg.Shards <= 0 || cfg.Servers <= 0 {
		return nil, fmt.Errorf("pylon: invalid config %+v", cfg)
	}
	if kv == nil {
		return nil, errors.New("pylon: nil kv cluster")
	}
	s := &Service{
		cfg:        cfg,
		kv:         kv,
		hostTopics: make(map[string]map[Topic]bool),
		serverLoad: make([]padded, cfg.Servers),
		eventSeq:   make([]padded, eventStripes),
		shardVer:   make([]atomic.Uint64, cfg.Shards),
		hostIDs:    intern.New(),
		FanoutSize: metrics.NewCountHistogram(),
	}
	hosts := make(map[string]Subscriber)
	s.hosts.Store(&hosts)
	slots := make([]Subscriber, 1) // slot 0 = intern.None
	s.hostSlots.Store(&slots)
	rt := &routeTable{up: make([]bool, cfg.Servers), anyUp: true}
	for i := range rt.up {
		rt.up[i] = true
	}
	s.route.Store(rt)
	if cfg.SubCacheSize > 0 {
		// Jittered TTLs decorrelate the periodic refresh across hot
		// topics; the seed is fixed so runs stay reproducible.
		s.subCache = cache.NewLRU[Topic, subEntry](
			cfg.SubCacheSize, cfg.SubCacheTTL, 0.25, cfg.Clock, 0x0b1ade)
	}
	burst := cfg.AdmitBurst
	if burst == 0 {
		burst = cfg.AdmitRate
	}
	s.Admit = overload.NewAdmission(cfg.AdmitRate, burst, cfg.Clock, cfg.AdmitSeed)
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, kv *kvstore.Cluster) *Service {
	s, err := New(cfg, kv)
	if err != nil {
		panic(err)
	}
	return s
}

// RegisterHost makes a BRASS host known to Pylon so subscriptions can be
// delivered to it.
func (s *Service) RegisterHost(sub Subscriber) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	old := *s.hosts.Load()
	hosts := make(map[string]Subscriber, len(old)+1)
	for k, v := range old {
		hosts[k] = v
	}
	hosts[sub.ID()] = sub
	s.hosts.Store(&hosts)
	h := s.hostIDs.Intern(sub.ID())
	oldSlots := *s.hostSlots.Load()
	n := len(oldSlots)
	if int(h) >= n {
		n = int(h) + 1
	}
	slots := make([]Subscriber, n)
	copy(slots, oldSlots)
	slots[h] = sub
	s.hostSlots.Store(&slots)
	if s.hostTopics[sub.ID()] == nil {
		s.hostTopics[sub.ID()] = make(map[Topic]bool)
	}
}

// Shard returns the topic's shard index.
func (s *Service) Shard(t Topic) int {
	return int(fnv64(string(t)) % uint64(s.cfg.Shards))
}

// ServerFor returns the index of the Pylon server owning the topic's
// shard, honoring any rebalancing overrides.
func (s *Service) ServerFor(t Topic) int {
	return s.route.Load().serverFor(s.Shard(t), s.cfg.Servers)
}

// SetServerUp marks a Pylon front-end up or down (failure injection).
func (s *Service) SetServerUp(i int, up bool) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	rt := s.route.Load().clone()
	rt.up[i] = up
	rt.recomputeAnyUp()
	s.route.Store(rt)
}

// ErrUnavailable is returned when no Pylon front end is reachable.
var ErrUnavailable = errors.New("pylon: no server available")

// ErrShed is returned by Publish when the admission controller sheds the
// event: the front end is over its configured rate and drops work at the
// door instead of queueing unboundedly. Best-effort publishers treat it
// like any other delivery failure.
var ErrShed = errors.New("pylon: publish shed by admission control")

// bumpShard advances a shard's subscription version, invalidating every
// cached subscriber set in the shard. Callers bump after the KV write so a
// publisher that loads the new version always reads post-write state.
func (s *Service) bumpShard(shard int) {
	s.shardVer[shard].Add(1)
}

// Subscribe registers hostID for topic. The write is CP: it fails without a
// KV quorum, in which case the caller (the BRASS subscription manager)
// retries against another replica set or surfaces the failure.
func (s *Service) Subscribe(topic Topic, hostID string) error {
	shard := s.Shard(topic)
	if _, known := (*s.hosts.Load())[hostID]; !known {
		return fmt.Errorf("%w: %q", ErrUnknownSubscriber, hostID)
	}
	rt := s.route.Load()
	if !rt.up[rt.serverFor(shard, s.cfg.Servers)] && !rt.anyUp {
		return ErrUnavailable
	}
	if _, err := s.kv.SetAdd(string(topic), kvstore.Member(hostID)); err != nil {
		return fmt.Errorf("pylon: subscribe %q: %w", topic, err)
	}
	s.wmu.Lock()
	// The host may have been concurrently removed; in that case its KV
	// entries are being torn down by RemoveHost and we must not resurrect
	// the reverse-index entry.
	if m := s.hostTopics[hostID]; m != nil {
		m[topic] = true
	}
	s.wmu.Unlock()
	s.bumpShard(shard)
	return nil
}

// Unsubscribe removes hostID's subscription to topic.
func (s *Service) Unsubscribe(topic Topic, hostID string) error {
	if _, err := s.kv.SetRemove(string(topic), kvstore.Member(hostID)); err != nil {
		return fmt.Errorf("pylon: unsubscribe %q: %w", topic, err)
	}
	s.wmu.Lock()
	if m := s.hostTopics[hostID]; m != nil {
		delete(m, topic)
	}
	s.wmu.Unlock()
	s.bumpShard(s.Shard(topic))
	return nil
}

// RemoveHost drops every subscription held by hostID — invoked when Pylon
// detects a BRASS host failure. The host leaves the delivery snapshot
// immediately: even a publish served from a cached subscriber set that
// still lists the host cannot deliver to it after RemoveHost returns.
func (s *Service) RemoveHost(hostID string) {
	s.wmu.Lock()
	topics := make([]Topic, 0, len(s.hostTopics[hostID]))
	for t := range s.hostTopics[hostID] {
		topics = append(topics, t)
	}
	delete(s.hostTopics, hostID)
	old := *s.hosts.Load()
	hosts := make(map[string]Subscriber, len(old))
	for k, v := range old {
		if k != hostID {
			hosts[k] = v
		}
	}
	s.hosts.Store(&hosts)
	if h, ok := s.hostIDs.Lookup(hostID); ok {
		oldSlots := *s.hostSlots.Load()
		slots := make([]Subscriber, len(oldSlots))
		copy(slots, oldSlots)
		slots[h] = nil
		s.hostSlots.Store(&slots)
	}
	s.wmu.Unlock()
	for _, t := range topics {
		_, _ = s.kv.SetRemove(string(t), kvstore.Member(hostID))
		s.bumpShard(s.Shard(t))
	}
}

// Subscribers returns the current merged subscriber list for a topic
// (diagnostics; the publish path uses the cache + staged first-responder
// flow). It always reads the replicas.
func (s *Service) Subscribers(topic Topic) []string {
	resp := s.kv.ReadAll(string(topic))
	views := make([]kvstore.SetView, 0, len(resp))
	for _, r := range resp {
		if r.Err == nil {
			views = append(views, r.View)
		}
	}
	merged := kvstore.Merge(views...)
	members := merged.Members()
	out := make([]string, len(members))
	for i, m := range members {
		out[i] = string(m)
	}
	return out
}

// nextEventID assigns an event ID from the shard's stripe counter.
func (s *Service) nextEventID(shard int) uint64 {
	stripe := uint64(shard) % eventStripes
	seq := uint64(s.eventSeq[stripe].v.Add(1))
	return seq<<8 | stripe
}

// Publish assigns the event an id and fans it out to the topic's
// subscribers.
//
// Fast path: if the topic's subscriber set is cached at the shard's
// current subscription version (and within its TTL), fan-out runs straight
// from the cached member list — no replica read, no patching.
//
// Slow path (cache miss, version change, TTL expiry, or cache disabled) is
// the staged first-responder flow:
//
//  1. Query all replicas of the topic's subscriber list.
//  2. Forward immediately to the members of the first successful response
//     (typically the local-region replica — lowest latency).
//  3. When the other responses arrive, forward to members missing from the
//     first list, and patch any divergent replica to the merged view.
//
// The merged view is cached under the version observed before the read;
// any subscription mutation that raced the read also bumped the version
// afterwards, so the stale entry misses on the next publish.
//
// Delivery is best effort: unknown or failed hosts are skipped silently.
// Publish returns the number of hosts the event was sent to.
//
// slow path lives in publishSlow behind an audited allow.
//
//brlint:hotpath fast-path fan-out is gated at 0 allocs/op (BENCH_3/5); the
func (s *Service) Publish(ev Event) (int, error) {
	shard := s.Shard(ev.Topic)
	rt := s.route.Load()
	srv := rt.serverFor(shard, s.cfg.Servers)
	if !rt.up[srv] {
		if !rt.anyUp {
			return 0, ErrUnavailable
		}
		// Another front end takes over the down server's shard.
		for i, up := range rt.up {
			if up {
				srv = i
				break
			}
		}
	}
	// Admission: shed before any ID assignment, replica read, or fan-out
	// work. The nil check is free when admission is disabled.
	if !s.Admit.Allow() {
		sp := s.Tracer.Start(ev.Trace, trace.HopFanout, trace.HopPublish)
		sp.Drop("admission")
		sp.End()
		return 0, ErrShed
	}
	s.serverLoad[srv].v.Add(1)
	ev.ID = s.nextEventID(shard)

	s.Publishes.Inc()

	// Inactive (and free) unless the event is sampled and a tracer is set.
	sp := s.Tracer.Start(ev.Trace, trace.HopFanout, trace.HopPublish)
	sp.Annotate("topic", string(ev.Topic))
	sp.AnnotateInt("shard", int64(shard))

	// The delivery snapshot is taken once per fan-out; deliverTo on the
	// hot path is then a plain map lookup.
	hosts := *s.hosts.Load()

	// Fast path: version-checked cache hit. The version is loaded before
	// the cache entry so a concurrent invalidation cannot be missed.
	var ver uint64
	if s.subCache != nil {
		ver = s.shardVer[shard].Load()
		if e, ok := s.subCache.Get(ev.Topic); ok {
			if e.ver == ver {
				s.SubCacheHits.Inc()
				// Dispatch via interned handles: one slice index per
				// subscriber instead of a string-keyed map lookup. Removed
				// hosts leave a nil slot, so even a fresh cache entry that
				// still lists them cannot deliver to them.
				slots := *s.hostSlots.Load()
				n := 0
				for _, h := range e.handles {
					if int(h) >= len(slots) {
						continue
					}
					if sub := slots[h]; sub != nil {
						//brlint:allow(hot-path-alloc) subscriber dispatch: production subscribers (brass.Host, bench.Sink) are hotpath-gated; baseline/ablation subscribers allocate but are experiment-only
						sub.Deliver(ev)
						n++
					}
				}
				s.finishFanout(n)
				sp.Annotate("cache", "hit")
				sp.AnnotateInt("fanout", int64(n))
				sp.End()
				return n, nil
			}
			s.SubCacheStale.Inc()
			sp.Annotate("cache", "stale")
		} else {
			s.SubCacheMiss.Inc()
			sp.Annotate("cache", "miss")
		}
	}

	// The span moves by value into the slow path, which ends it; taking
	// its address here would heap-allocate it on every publish.
	//brlint:allow(hot-path-alloc) cache miss/stale takes the replica-read flow; its allocations are per-miss, not per-publish, and the cached result keeps later publishes on the fast path
	return s.publishSlow(ev, shard, ver, hosts, sp)
}

// publishSlow is the staged first-responder flow behind Publish's cache
// miss: replica read, immediate forward on the first response, catch-up
// forwards, divergence repair, and cache fill. It owns sp from here on and
// ends it on every path.
func (s *Service) publishSlow(ev Event, shard int, ver uint64, hosts map[string]Subscriber, sp trace.Span) (int, error) {
	resp := s.kv.ReadAll(string(ev.Topic))

	// Stage 1: first successful replica response starts fan-out.
	sent := make(map[kvstore.Member]bool)
	first := -1
	for i, r := range resp {
		if r.Err == nil {
			first = i
			for _, m := range r.View.Members() {
				if sub := hosts[string(m)]; sub != nil {
					sub.Deliver(ev)
					sent[m] = true
				}
			}
			break
		}
	}
	if first == -1 {
		// All replicas down: the event is dropped (best effort); the
		// affected BRASSes detect quorum loss separately.
		s.DroppedNoSub.Inc()
		sp.Annotate("drop", "all-replicas-down")
		sp.End()
		return 0, fmt.Errorf("pylon: publish %q: all subscription replicas down", ev.Topic)
	}

	// Stage 2: remaining replicas may know subscribers the first missed.
	views := make([]kvstore.SetView, 0, len(resp))
	diverged := false
	for i, r := range resp {
		if r.Err != nil {
			continue
		}
		views = append(views, r.View)
		if i == first {
			continue
		}
		for _, m := range r.View.Members() {
			if !sent[m] {
				if sub := hosts[string(m)]; sub != nil {
					sub.Deliver(ev)
					sent[m] = true
					s.PatchForwards.Inc()
				}
				diverged = true
			}
		}
	}

	// Stage 3: repair divergent replicas toward the merged view.
	merged := kvstore.Merge(views...)
	patched := 0
	if diverged || len(views) > 1 {
		if patched = s.kv.Patch(string(ev.Topic), merged); patched > 0 {
			s.Patches.Add(int64(patched))
		}
	}

	if s.subCache != nil {
		if patched > 0 {
			// The repair changed replica state out from under any entry
			// cached off the divergent views (including by concurrent
			// publishers); force the next publish to re-read.
			s.bumpShard(shard)
		} else {
			// Resolve members to interned handles once, at fill time; the
			// fan-out loop then never touches the strings again. Interning
			// is a mutex'd map hit for known hosts — per miss, not per
			// publish.
			members := merged.Members()
			handles := make([]uint32, len(members))
			for i, m := range members {
				handles[i] = s.hostIDs.Intern(string(m))
			}
			s.subCache.Put(ev.Topic, subEntry{ver: ver, handles: handles})
		}
	}

	n := len(sent)
	s.finishFanout(n)
	sp.AnnotateInt("fanout", int64(n))
	sp.End()
	return n, nil
}

// finishFanout records the per-publish delivery metrics.
func (s *Service) finishFanout(n int) {
	if n == 0 {
		s.DroppedNoSub.Inc()
	}
	s.Deliveries.Add(int64(n))
	s.FanoutSize.Observe(int64(n))
}

func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
