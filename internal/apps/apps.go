// Package apps contains the Bladerunner applications described in the
// paper (§3.4 and §4): LiveVideoComments, ActiveStatus, TypingIndicator,
// Stories, Messenger (reliable delivery), and NewsFeedPostComments.
//
// Each application consists of two halves, exactly as in production:
//
//   - a WAS half — mutation/query/subscription/payload resolvers registered
//     with the Web Application Server (internal/was), which writes TAO and
//     publishes metadata-only update events to Pylon; and
//   - a BRASS half — a brass.Application whose instances filter, rank,
//     privacy-check, and rate-limit updates per device stream.
//
// The paper stresses that every application is implemented independently in
// "at most a few hundred lines"; each file in this package honors that
// shape. RegisterAll wires every application into a WAS and a BRASS host.
package apps

import (
	"bladerunner/internal/brass"
	"bladerunner/internal/was"
)

// Application names used in subscription headers.
const (
	AppLiveComments = "livecomments"
	AppActiveStatus = "activestatus"
	AppTyping       = "typing"
	AppStories      = "stories"
	AppMessenger    = "messenger"
	AppFeedComments = "feedcomments"
)

// HdrLang is the stream header carrying the viewer's language, used by
// LiveVideoComments' language filter.
const HdrLang = "lang"

// Registrar is the WAS surface the applications' constructors consume:
// registration of query/mutation/subscription/payload resolvers.
// *was.Server satisfies it directly. A process hosting only the BRASS tier
// builds its Suite against NopRegistrar — the WAS halves live in the WAS
// process, reached over the control protocol, so local registration is a
// no-op there.
type Registrar interface {
	RegisterQuery(name string, fn was.QueryFunc)
	RegisterMutation(name string, fn was.MutationFunc)
	RegisterSubscription(name string, fn was.SubscriptionFunc)
	RegisterPayload(app string, fn was.PayloadFunc)
}

// NopRegistrar discards every registration. Used by processes that need the
// applications' BRASS halves but whose WAS resolvers live elsewhere.
type NopRegistrar struct{}

func (NopRegistrar) RegisterQuery(string, was.QueryFunc)               {}
func (NopRegistrar) RegisterMutation(string, was.MutationFunc)         {}
func (NopRegistrar) RegisterSubscription(string, was.SubscriptionFunc) {}
func (NopRegistrar) RegisterPayload(string, was.PayloadFunc)           {}

var _ Registrar = (*was.Server)(nil)
var _ Registrar = NopRegistrar{}

// Suite bundles one instance of every application's shared (WAS-side)
// state, so multiple BRASS hosts can serve the same applications.
type Suite struct {
	LVC          *LiveVideoComments
	ActiveStatus *ActiveStatus
	Typing       *TypingIndicator
	Stories      *Stories
	Messenger    *Messenger
	FeedComments *FeedComments
	Reactions    *LiveVideoReactions
	Notifs       *WebsiteNotifications
}

// NewSuite builds all applications and registers their WAS halves.
func NewSuite(w Registrar) *Suite {
	return &Suite{
		LVC:          NewLiveVideoComments(w),
		ActiveStatus: NewActiveStatus(w),
		Typing:       NewTypingIndicator(w),
		Stories:      NewStories(w),
		Messenger:    NewMessenger(w),
		FeedComments: NewFeedComments(w),
		Reactions:    NewLiveVideoReactions(w),
		Notifs:       NewWebsiteNotifications(w),
	}
}

// RegisterBRASS registers every application's BRASS half on a host.
func (s *Suite) RegisterBRASS(h *brass.Host) {
	h.RegisterApp(s.LVC)
	h.RegisterApp(s.ActiveStatus)
	h.RegisterApp(s.Typing)
	h.RegisterApp(s.Stories)
	h.RegisterApp(s.Messenger)
	h.RegisterApp(s.FeedComments)
	h.RegisterApp(s.Reactions)
	h.RegisterApp(s.Notifs)
}
