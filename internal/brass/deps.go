package brass

import (
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
)

// PubSub is the Pylon surface a BRASS host consumes: subscription
// registration plus host lifecycle. *pylon.Service satisfies it directly
// (the in-process cluster); the multi-process deployment satisfies it with
// a control-protocol client talking to the pylon tier (internal/ctrl), so
// the host is oblivious to whether Pylon is a function call or a socket
// away.
//
// Implementations must preserve Pylon's error identities — in particular
// pylon.ErrNoQuorum and pylon.ErrUnavailable must survive (wrapped is
// fine), because the host's subscription manager classifies them as
// transient and retries in the background.
type PubSub interface {
	// RegisterHost announces the subscriber so published events can be
	// delivered to it.
	RegisterHost(sub pylon.Subscriber)
	// Subscribe registers hostID's interest in topic.
	Subscribe(topic pylon.Topic, hostID string) error
	// Unsubscribe removes hostID's interest in topic.
	Unsubscribe(topic pylon.Topic, hostID string) error
	// RemoveHost drops every subscription held by hostID.
	RemoveHost(hostID string)
}

// Backend is the WAS surface a BRASS host consumes: subscription
// resolution, queries issued on behalf of applications, and the privacy/
// payload path. *was.Server satisfies it directly; the multi-process
// deployment uses a control-protocol client (internal/ctrl).
type Backend interface {
	// ResolveSubscription maps a device subscription expression to the
	// concrete Pylon topics it covers.
	ResolveSubscription(viewer socialgraph.UserID, expr string) ([]pylon.Topic, error)
	// QueryIn executes a GraphQL read as viewer in region.
	QueryIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error)
	// CheckEventVisibility runs the privacy check gating the release of
	// ev's payload to viewer.
	CheckEventVisibility(viewer socialgraph.UserID, ev pylon.Event) error
	// ResolvePayloadIn resolves ev's viewer-independent payload bytes.
	ResolvePayloadIn(region, app string, ev pylon.Event) ([]byte, error)
	// FetchPayloadIn is CheckEventVisibility + ResolvePayloadIn in one
	// call (the uncoalesced per-viewer path).
	FetchPayloadIn(region, app string, viewer socialgraph.UserID, ev pylon.Event) ([]byte, error)
}
