// Package countedshed is a brlint fixture for the counted-shed rule: a
// select with a send clause and a default clause is a best-effort drop and
// must record the shed on a metrics instrument — in the default body or in
// the fall-through continuation (evict-retry idiom). Wake-token sends of
// struct{}{} and receive-only polls are not the rule's business.
package countedshed

import "bladerunner/internal/metrics"

type sink struct {
	ch      chan int
	drops   metrics.Counter
	evicted metrics.Counter
}

// SilentDrop is the bug the rule exists for: the payload vanishes and no
// counter moves.
func (s *sink) SilentDrop(v int) {
	select { // want `counted-shed: best-effort drop is not counted`
	case s.ch <- v:
	default:
	}
}

// CountedInDefault is the classic sanctioned shape.
func (s *sink) CountedInDefault(v int) {
	select {
	case s.ch <- v:
	default:
		s.drops.Inc()
	}
}

// CountedInContinuation is the evict-retry idiom: the first select's empty
// default falls through to a companion receive-select that evicts the
// oldest item and counts it.
func (s *sink) CountedInContinuation(v int) {
	for {
		select {
		case s.ch <- v:
			return
		default:
		}
		select {
		case <-s.ch:
			s.evicted.Inc()
		default:
		}
	}
}

// WakeToken sends carry no data; dropping one when the buffer already
// holds a token loses nothing.
func (s *sink) WakeToken(ready chan struct{}) {
	select {
	case ready <- struct{}{}:
	default:
	}
}

// PollIsFine: receive-with-default is a poll, not a shed.
func (s *sink) PollIsFine() (int, bool) {
	select {
	case v := <-s.ch:
		return v, true
	default:
		return 0, false
	}
}

// Allowed demonstrates the escape hatch for level-triggered notification
// channels where the receiver re-reads current state anyway.
func (s *sink) Allowed(v int) {
	//brlint:allow(counted-shed) fixture: level-triggered notify; watcher re-reads on next wake
	select {
	case s.ch <- v:
	default:
	}
}
