// Package goroutines is a brlint fixture for the goroutine-hygiene rule:
// `go func` literals must not capture loop variables (pass them as
// arguments) and unbounded `for` loops inside them need a shutdown path.
package goroutines

func process(int) {}

func busy() {}

func LoopCapture(items []int) {
	for _, it := range items {
		go func() {
			process(it) // want `goroutine-hygiene: goroutine captures loop variable it`
		}()
	}
}

func IndexCapture(n int) {
	for i := 0; i < n; i++ {
		go func() {
			process(i) // want `goroutine-hygiene: goroutine captures loop variable i`
		}()
	}
}

func NoShutdown() {
	go func() {
		for { // want `goroutine-hygiene: goroutine runs an unbounded for loop with no shutdown path`
			busy()
		}
	}()
}

// LoopArgIsFine: the loop variable is passed as an argument, not captured.
func LoopArgIsFine(items []int) {
	for _, it := range items {
		go func(v int) {
			process(v)
		}(it)
	}
}

// ShutdownViaSelectIsFine: the select gives the loop a way to park or exit.
func ShutdownViaSelectIsFine(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			busy()
		}
	}()
}

// RangeOverChannelIsFine: the range parks on the channel and ends when it
// is closed.
func RangeOverChannelIsFine(work chan int) {
	go func() {
		for v := range work {
			process(v)
		}
	}()
}

// Allowed demonstrates the escape hatch for a deliberate forever-loop.
func Allowed() {
	go func() {
		//brlint:allow(goroutine-hygiene) fixture: runs for the whole process lifetime by design
		for {
			busy()
		}
	}()
}
