// Package baseline implements the alternative dissemination architectures
// the paper evaluates Bladerunner against (§2): client-side polling,
// server-side polling agents, pub/sub-triggered polling (Thialfi-style), a
// Kafka-like distributed event log, and direct pub/sub data distribution.
// The experiment harness and the benchmarks run these against the same
// workloads as Bladerunner to reproduce the paper's resource and latency
// comparisons (the 10× LVC switchover, the 80%-empty-poll measurement, the
// 8× Messenger hardware claim).
package baseline

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/metrics"
	"bladerunner/internal/pylon"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/was"
)

// ClientPoller models the client-side polling architecture (Fig 1): the
// device re-issues its GraphQL query every Interval and diffs the response.
// Most polls return nothing new; every poll costs a backend range query.
type ClientPoller struct {
	WAS      *was.Server
	Viewer   socialgraph.UserID
	Query    string
	Interval time.Duration
	Sched    sim.Scheduler
	// OnNewData runs when a poll returns data that differs from the
	// previous response.
	OnNewData func(data []byte)

	mu      sync.Mutex
	last    []byte
	stopped bool
	cancel  func()

	Polls      metrics.Counter
	EmptyPolls metrics.Counter
	BytesDown  metrics.Counter // last-mile bytes (every poll response)
}

// Start begins the poll loop.
func (p *ClientPoller) Start() {
	if p.Sched == nil {
		p.Sched = sim.RealClock{}
	}
	p.schedule()
}

func (p *ClientPoller) schedule() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.cancel = p.Sched.After(p.Interval, func() {
		p.pollOnce()
		p.schedule()
	})
}

// pollOnce issues one poll and diffs the result.
func (p *ClientPoller) pollOnce() {
	data, err := p.WAS.Query(p.Viewer, p.Query)
	p.Polls.Inc()
	if err != nil {
		return
	}
	p.BytesDown.Add(int64(len(data))) // the response crosses the last mile either way
	p.mu.Lock()
	same := bytes.Equal(data, p.last)
	if !same {
		p.last = append(p.last[:0], data...)
	}
	cb := p.OnNewData
	p.mu.Unlock()
	if same {
		p.EmptyPolls.Inc()
		return
	}
	if cb != nil {
		cb(data)
	}
}

// Stop ends the poll loop.
func (p *ClientPoller) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
	if p.cancel != nil {
		p.cancel()
	}
}

// EmptyPollRate returns the fraction of polls that found nothing new.
func (p *ClientPoller) EmptyPollRate() float64 {
	total := p.Polls.Value()
	if total == 0 {
		return 0
	}
	return float64(p.EmptyPolls.Value()) / float64(total)
}

// ServerAgentPoller models server-side polling (§2): a backend agent polls
// on the client's behalf and pushes only changed data over the persistent
// last-mile connection. Backend query cost is unchanged; last-mile bytes
// drop to changes only.
type ServerAgentPoller struct {
	ClientPoller // the agent reuses the poll loop...

	// Push is the last-mile delivery callback (only on change).
	Push func(data []byte)

	BytesPushed metrics.Counter
}

// Start begins the agent's poll loop with push-on-change semantics.
func (a *ServerAgentPoller) Start() {
	a.ClientPoller.OnNewData = func(data []byte) {
		a.BytesPushed.Add(int64(len(data)))
		if a.Push != nil {
			a.Push(data)
		}
	}
	a.ClientPoller.Start()
	// The agent's poll responses do not cross the last mile; only pushes
	// do. Reset the meaning of BytesDown by zeroing the attribution: the
	// caller should read BytesPushed for last-mile accounting.
}

// TriggeredPoller models pub/sub-triggered polling (Thialfi-style, §2): a
// notification-only pub/sub tells the client an update happened; the client
// then polls. Polls that would return nothing are eliminated, but each
// delivery still costs a full (range) query, and hot topics trigger
// per-device query storms.
type TriggeredPoller struct {
	id     string
	WAS    *was.Server
	Viewer socialgraph.UserID
	Query  string
	// OnData receives each triggered poll's response.
	OnData func(data []byte)

	Triggers metrics.Counter
	Polls    metrics.Counter
}

// NewTriggeredPoller builds a triggered poller with the given unique id
// (it registers with Pylon as a subscriber host).
func NewTriggeredPoller(id string, w *was.Server, viewer socialgraph.UserID, query string) *TriggeredPoller {
	return &TriggeredPoller{id: id, WAS: w, Viewer: viewer, Query: query}
}

// ID implements pylon.Subscriber.
func (t *TriggeredPoller) ID() string { return t.id }

// Deliver implements pylon.Subscriber: each notification triggers a poll.
func (t *TriggeredPoller) Deliver(ev pylon.Event) {
	t.Triggers.Inc()
	data, err := t.WAS.Query(t.Viewer, t.Query)
	t.Polls.Inc()
	if err != nil {
		return
	}
	if t.OnData != nil {
		t.OnData(data)
	}
}

var _ pylon.Subscriber = (*TriggeredPoller)(nil)

// ErrTopicLimit is returned when the event log cannot create more topics —
// the structural constraint that disqualifies Kafka-style logs for
// Bladerunner's billions of dynamic topics (§2: LinkedIn's variant supports
// 100,000 topics).
var ErrTopicLimit = errors.New("baseline: event log topic limit reached")

// EventLog is a minimal Kafka-like partitioned append-only log. Consumers
// poll partitions by offset. Every event lives in exactly one partition,
// serializing access to it.
type EventLog struct {
	maxTopics     int
	partitionsPer int

	mu     sync.Mutex
	topics map[string][][]LogRecord

	Appends    metrics.Counter
	FetchCalls metrics.Counter
	EmptyFetch metrics.Counter
}

// LogRecord is one appended event.
type LogRecord struct {
	Offset  int64
	Payload []byte
	Time    time.Time
}

// NewEventLog builds a log with the given topic cap and partitions/topic.
func NewEventLog(maxTopics, partitionsPer int) *EventLog {
	if partitionsPer <= 0 {
		partitionsPer = 1
	}
	return &EventLog{
		maxTopics:     maxTopics,
		partitionsPer: partitionsPer,
		topics:        make(map[string][][]LogRecord),
	}
}

// Topics returns the number of created topics.
func (l *EventLog) Topics() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.topics)
}

// Append writes payload to the topic (creating it if the cap allows),
// assigning the event to a partition by key hash.
func (l *EventLog) Append(topic, key string, payload []byte, now time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	parts, ok := l.topics[topic]
	if !ok {
		if l.maxTopics > 0 && len(l.topics) >= l.maxTopics {
			return fmt.Errorf("%w (%d topics)", ErrTopicLimit, l.maxTopics)
		}
		parts = make([][]LogRecord, l.partitionsPer)
		l.topics[topic] = parts
	}
	p := int(fnv32(key)) % len(parts)
	if p < 0 {
		p += len(parts)
	}
	parts[p] = append(parts[p], LogRecord{
		Offset:  int64(len(parts[p])),
		Payload: payload,
		Time:    now,
	})
	l.Appends.Inc()
	return nil
}

// Fetch returns up to max records from the partition starting at offset.
func (l *EventLog) Fetch(topic string, partition int, offset int64, max int) []LogRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.FetchCalls.Inc()
	parts, ok := l.topics[topic]
	if !ok || partition < 0 || partition >= len(parts) {
		l.EmptyFetch.Inc()
		return nil
	}
	p := parts[partition]
	if offset >= int64(len(p)) {
		l.EmptyFetch.Inc()
		return nil
	}
	end := offset + int64(max)
	if max <= 0 || end > int64(len(p)) {
		end = int64(len(p))
	}
	out := make([]LogRecord, end-offset)
	copy(out, p[offset:end])
	return out
}

// Partitions returns the partition count for a topic (0 if absent).
func (l *EventLog) Partitions(topic string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.topics[topic])
}

// DirectPubSub models pushing full update payloads straight to devices
// with no per-user processing (§2 "Pub/sub data distribution"): hot topics
// become a firehose that overwhelms devices and the last mile.
type DirectPubSub struct {
	mu     sync.Mutex
	topics map[string][]chan<- []byte

	Published     metrics.Counter
	Fanout        metrics.Counter
	BytesLastMile metrics.Counter
	Overflows     metrics.Counter // deliveries dropped at a full device
}

// NewDirectPubSub returns an empty broker.
func NewDirectPubSub() *DirectPubSub {
	return &DirectPubSub{topics: make(map[string][]chan<- []byte)}
}

// Subscribe attaches a device channel to a topic.
func (d *DirectPubSub) Subscribe(topic string, ch chan<- []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.topics[topic] = append(d.topics[topic], ch)
}

// Publish pushes payload to every subscribed device, unfiltered.
func (d *DirectPubSub) Publish(topic string, payload []byte) int {
	d.mu.Lock()
	subs := append([]chan<- []byte(nil), d.topics[topic]...)
	d.mu.Unlock()
	d.Published.Inc()
	delivered := 0
	for _, ch := range subs {
		select {
		case ch <- payload:
			delivered++
			d.BytesLastMile.Add(int64(len(payload)))
		default:
			d.Overflows.Inc() // device can't keep up with the firehose
		}
	}
	d.Fanout.Add(int64(delivered))
	return delivered
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
