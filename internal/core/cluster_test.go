package core

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/burst"
	"bladerunner/internal/socialgraph"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// deviceStreamRef lets tests poll a stream's current request lazily.
type deviceStreamRef struct {
	req func() burst.Subscribe
}

func newCluster(t *testing.T) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Graph.Users = 100
	cfg.Graph.MeanFriends = 10
	cfg.Graph.BlockProb = 0
	c, err := NewCluster(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Apps.LVC.RateLimit = 10 * time.Millisecond
	c.Apps.LVC.RankBeforePublish = false
	t.Cleanup(c.Close)
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{}, nil); err == nil {
		t.Error("empty config accepted")
	}
	cfg := DefaultConfig()
	cfg.POPs = 0
	if _, err := NewCluster(cfg, nil); err == nil {
		t.Error("zero POPs accepted")
	}
}

func TestClusterTopology(t *testing.T) {
	c := newCluster(t)
	if len(c.Hosts) != 4 {
		t.Errorf("hosts = %d, want 4", len(c.Hosts))
	}
	if len(c.Proxies) != 2 || len(c.POPs) != 2 {
		t.Errorf("proxies=%d pops=%d", len(c.Proxies), len(c.POPs))
	}
	if got := len(c.POPTargets()); got != 2 {
		t.Errorf("POPTargets = %d", got)
	}
	// Registry knows host placement.
	if v, ok := c.Registry.Get("brass/brass-us-east-0/region"); !ok || v != "us-east" {
		t.Errorf("registry placement = %q, %v", v, ok)
	}
}

// TestClusterEndToEndLVC drives the complete production path: device →
// POP → reverse proxy → BRASS → Pylon/WAS/TAO and back.
func TestClusterEndToEndLVC(t *testing.T) {
	c := newCluster(t)
	viewer := c.NewDevice(1)
	defer viewer.Close()
	if err := viewer.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := viewer.Subscribe(apps.AppLiveComments, "liveVideoComments(videoID: 42)", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pylon subscription", func() bool {
		return len(c.Pylon.Subscribers(apps.LVCTopic(42))) >= 1
	})

	commenter := c.NewDevice(2)
	defer commenter.Close()
	if _, err := commenter.Mutate(`postComment(videoID: 42, text: "hello from the edge")`); err != nil {
		t.Fatal(err)
	}

	select {
	case d := <-st.Updates:
		var p apps.CommentPayload
		if err := json.Unmarshal(d.Payload, &p); err != nil {
			t.Fatal(err)
		}
		if p.Text != "hello from the edge" || p.Author != 2 {
			t.Errorf("payload = %+v", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("comment never crossed the full path")
	}

	waitFor(t, "counters", func() bool {
		return c.TotalDecisions() > 0 && c.TotalDeliveries() > 0
	})
}

// TestClusterSurvivesBRASSFailure kills the serving BRASS host and checks
// the stream is repaired to another host with delivery continuing.
func TestClusterSurvivesBRASSFailure(t *testing.T) {
	c := newCluster(t)
	viewer := c.NewDevice(3)
	defer viewer.Close()
	if err := viewer.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := viewer.Subscribe(apps.AppTyping, "typingIndicator(threadID: 9, peer: 4)", nil)
	if err != nil {
		t.Fatal(err)
	}
	topic := apps.TypingTopic(9, 4)
	waitFor(t, "subscription", func() bool { return len(c.Pylon.Subscribers(topic)) >= 1 })

	// Find and kill the serving host.
	servingID := c.Pylon.Subscribers(topic)[0]
	var serving int = -1
	for i, h := range c.Hosts {
		if h.ID() == servingID {
			serving = i
			break
		}
	}
	if serving == -1 {
		t.Fatalf("serving host %q not found", servingID)
	}
	c.Net.SetDown(servingID, true)
	c.Hosts[serving].Close()

	// The proxy repairs the stream to another BRASS, which resubscribes
	// with Pylon.
	waitFor(t, "repair to another host", func() bool {
		subs := c.Pylon.Subscribers(topic)
		return len(subs) >= 1 && subs[0] != servingID
	})

	peer := c.NewDevice(4)
	defer peer.Close()
	if _, err := peer.Mutate(`setTyping(threadID: 9, on: "true")`); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-st.Updates:
		var p apps.TypingPayload
		if err := json.Unmarshal(d.Payload, &p); err != nil {
			t.Fatal(err)
		}
		if p.User != 4 || !p.Typing {
			t.Errorf("payload = %+v", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery after BRASS failover")
	}
}

func TestClusterMultipleDevicesShareTopic(t *testing.T) {
	c := newCluster(t)
	const n = 4
	type upd struct {
		ch <-chan burst.Delta
	}
	var chans []upd
	var streams []*deviceStreamRef
	for i := 0; i < n; i++ {
		d := c.NewDevice(socialgraph.UserID(10 + i))
		defer d.Close()
		if err := d.Connect(); err != nil {
			t.Fatal(err)
		}
		st, err := d.Subscribe(apps.AppFeedComments, "feedPostComments(postID: 77)", nil)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, upd{ch: st.Updates})
		streams = append(streams, &deviceStreamRef{req: st.Request})
	}
	// Every stream may land on a different BRASS host; wait until each
	// stream's serving host (identified by the sticky-routing rewrite) is
	// registered with Pylon for the topic.
	waitFor(t, "all serving hosts subscribed", func() bool {
		subs := map[string]bool{}
		for _, s := range c.Pylon.Subscribers(apps.PostTopic(77)) {
			subs[s] = true
		}
		for _, sref := range streams {
			host := sref.req().Header[burst.HdrStickyBRASS]
			if host == "" || !subs[host] {
				return false
			}
		}
		return true
	})
	author := c.NewDevice(50)
	defer author.Close()
	if _, err := author.Mutate(`postFeedComment(postID: 77, text: "to all")`); err != nil {
		t.Fatal(err)
	}
	for i, u := range chans {
		select {
		case <-u.ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("device %d never got the comment", i)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Get("missing"); ok {
		t.Error("missing key found")
	}
	if got := r.GetDefault("missing", "d"); got != "d" {
		t.Errorf("GetDefault = %q", got)
	}
	ch := r.Watch("k")
	r.Set("k", "v1")
	select {
	case v := <-ch:
		if v != "v1" {
			t.Errorf("watch got %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("watch never fired")
	}
	if v, ok := r.Get("k"); !ok || v != "v1" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if r.Keys() != 1 {
		t.Errorf("Keys = %d", r.Keys())
	}
	// Slow watcher doesn't block Set.
	for i := 0; i < 20; i++ {
		r.Set("k", fmt.Sprintf("v%d", i))
	}
}
