// Chaos run for the overload-control plane: the full wired stack with
// bounded BRASS loop queues and per-stream delivery admission enabled, hit
// with a message storm that forces real shedding, a seeded mid-storm POP
// cut, and subscriber churn on the hot mailbox topic. The invariants:
//
//   - Gap-free resume: every shed payload is recovered by the device's
//     shed-then-resync point queries (mailboxSince) — the final view holds
//     sequence 1..K with no holes, even though most of the storm was
//     dropped in flight.
//   - Flow state converges: the stream's last flow code is FlowRecovered.
//   - Subscriber-cache invalidation holds while shedding: a host
//     unsubscribed mid-storm goes silent once in-flight rounds drain.
//   - Nothing leaks: goroutine count returns to baseline.
package faults_test

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/burst"
	"bladerunner/internal/core"
	"bladerunner/internal/device"
	"bladerunner/internal/faults"
	"bladerunner/internal/socialgraph"
)

// TestChaosOverloadGapFreeResync storms one mailbox stream hard enough to
// shed, cuts the device's POP mid-storm, and asserts the device's view is
// eventually gap-free purely through shed-then-resync plus the BRASS
// resume catch-up.
func TestChaosOverloadGapFreeResync(t *testing.T) {
	seed := chaosSeed(t)
	goroutinesBefore := runtime.NumGoroutine()

	cfg := core.DefaultConfig()
	cfg.Graph.Users = 100
	cfg.Graph.BlockProb = 0
	// Aggressive overload posture: tiny loop queues and a per-stream
	// delivery budget far below the storm rate, so shedding is guaranteed.
	cfg.Overload = core.OverloadConfig{
		LoopQueueDepth:     16,
		StreamDeliverRate:  25,
		StreamDeliverBurst: 4,
	}
	c := core.MustNewCluster(cfg, nil)
	fn := faults.NewFaultNetwork(c.Net, nil, seed)
	pops := c.POPTargets()

	const (
		authorUID = socialgraph.UserID(90)
		viewerUID = socialgraph.UserID(10)
	)
	author := c.NewDevice(authorUID)
	viewer := c.NewDeviceVia(fn, device.Config{
		User:        viewerUID,
		Backoff:     faults.BackoffPolicy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond},
		BackoffSeed: seed + 1,
	})
	if err := viewer.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := viewer.Subscribe(apps.AppMessenger, "messenger", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := watch(st)

	// Shed-then-resync: a shed marker (or the matching recovery) re-fetches
	// the mailbox tail via a WAS point query and feeds it to the same
	// watcher, closing whatever gap the shedding opened.
	// The first resync dwells until a second recovery marker has arrived
	// and coalesced into it (bounded at 5s): the shed episode's CLOSE
	// marker, driven by the post-storm trickle, lands while that first
	// query is provably still in flight, so the coalescing path (markers
	// absorbed into one trailing re-run) is exercised deterministically
	// and asserted below. build runs on its own timer goroutine with
	// resyncPending held, so the dwell blocks neither the delta pump nor
	// the reconnect backoff timers.
	var dwell sync.Once
	st.SetResync(
		func(lastSeq uint64) string {
			dwell.Do(func() {
				wait := time.Now().Add(5 * time.Second)
				for viewer.ResyncCoalesced.Value() == 0 && time.Now().Before(wait) {
					time.Sleep(5 * time.Millisecond)
				}
			})
			return fmt.Sprintf("mailboxSince(seq: %d)", lastSeq)
		},
		func(out []byte) {
			var msgs []apps.MessagePayload
			if err := json.Unmarshal(out, &msgs); err != nil {
				return
			}
			w.mu.Lock()
			for _, m := range msgs {
				w.seqs[m.Seq] = true
				if m.Seq > w.maxSeq {
					w.maxSeq = m.Seq
				}
			}
			w.mu.Unlock()
		},
	)

	var thread uint64
	out, err := author.Mutate(fmt.Sprintf(`createThread(members: "%d,%d")`, authorUID, viewerUID))
	if err != nil {
		t.Fatal(err)
	}
	_ = json.Unmarshal(out, &thread)
	topic := apps.MailboxTopic(viewerUID)
	waitFor(t, "mailbox subscription", func() bool {
		return len(c.Pylon.Subscribers(topic)) >= 1
	})

	send := func(text string) uint64 {
		t.Helper()
		msg := fmt.Sprintf(`sendMessage(threadID: %d, text: "%s")`, thread, text)
		if _, err := author.Mutate(msg); err != nil {
			t.Fatal(err)
		}
		return 1
	}

	var sent uint64
	sent += send("baseline")
	waitFor(t, "baseline delivery", func() bool { return w.hasAll(sent) })

	// Mid-storm churner: an extra host subscribes to the hot topic while
	// shedding is active, then unsubscribes — the version bump must
	// invalidate every cached member list even under overload.
	churn := &recHost{id: "churn-overload"}
	c.Pylon.RegisterHost(churn)

	// The storm: far over the 25/s stream budget, so most of it sheds.
	const storm = 150
	for i := 0; i < storm; i++ {
		sent += send(fmt.Sprintf("storm-%d", i))
		switch i {
		case storm / 3:
			if err := c.Pylon.Subscribe(topic, churn.id); err != nil {
				t.Fatalf("mid-storm subscribe: %v", err)
			}
		case 2 * storm / 3:
			if err := c.Pylon.Unsubscribe(topic, churn.id); err != nil {
				t.Fatalf("mid-storm unsubscribe: %v", err)
			}
		}
	}
	if churn.n.Load() == 0 {
		t.Error("churned host saw no deliveries while subscribed mid-storm")
	}
	c.Pylon.RemoveHost(churn.id)
	silentAt := churn.n.Load()

	// Seeded connection chaos on top of the shedding: cut every POP, let
	// the device notice, heal, and require a full resume.
	for _, pop := range pops {
		fn.Cut(pop)
	}
	time.Sleep(50 * time.Millisecond)
	for _, pop := range pops {
		fn.Heal(pop)
	}
	waitFor(t, "device reconnected", func() bool { return viewer.Connected() })
	waitFor(t, "stream resubscribed", func() bool { return viewer.Streams() == 1 })

	// Shedding must actually have happened for this run to mean anything.
	var sheds int64
	for _, h := range c.Hosts {
		sheds += h.StreamSheds.Value() + h.LoopOverflows.Value()
	}
	if sheds == 0 {
		t.Fatal("storm produced zero sheds; overload plane never engaged")
	}

	// Post-storm trickle until the view is gap-free: each message is under
	// the admission rate, so it lands, closes any open shed episode
	// (FlowRecovered carries the recovered marker → trailing resync), and
	// the resyncs backfill everything the storm dropped.
	// FlowRecovered is emitted lazily (on the next admitted payload after a
	// shed episode), so the trickle also drives flow-state convergence.
	settled := func() bool {
		recovered, last := w.snapshot()
		return w.hasAll(sent) && recovered > 0 && last == burst.FlowRecovered
	}
	deadline := time.Now().Add(20 * time.Second)
	for !settled() {
		if time.Now().After(deadline) {
			w.mu.Lock()
			missing := []uint64{}
			for s := uint64(1); s <= sent && len(missing) < 10; s++ {
				if !w.seqs[s] {
					missing = append(missing, s)
				}
			}
			w.mu.Unlock()
			recovered, last := w.snapshot()
			t.Fatalf("never settled (seed %d): %d sent, first missing seqs %v, resyncs=%d, recovered=%d, lastFlow=%v",
				seed, sent, missing, viewer.Resyncs.Value(), recovered, last)
		}
		sent += send("trickle")
		time.Sleep(50 * time.Millisecond)
	}
	if viewer.Resyncs.Value() == 0 {
		t.Error("gap closed without any resync — storm was not shed enough to test the path")
	}
	if c.WAS.PointQueries.Value() == 0 {
		t.Error("resyncs issued no WAS point queries")
	}
	if viewer.ResyncCoalesced.Value() == 0 {
		t.Error("no recovery marker coalesced into the dwelled first resync")
	}

	// The removed churn host stays silent for post-removal publishes.
	sent += send("post-churn")
	waitFor(t, "post-churn delivery", func() bool { return w.hasAll(sent) })
	if got := churn.n.Load(); got != silentAt {
		t.Errorf("removed host delivered %d events after unsubscribe+remove", got-silentAt)
	}
	if c.Pylon.SubCacheStale.Value() == 0 {
		t.Error("subscriber churn never invalidated a cached member list")
	}

	// Teardown and leak check.
	viewer.Close()
	author.Close()
	w.done.Wait()
	c.Close()
	waitFor(t, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= goroutinesBefore+3
	})
	t.Logf("seed %d: sent=%d sheds=%d resyncs=%d coalesced=%d pointQueries=%d coalesced-flow=%d",
		seed, sent, sheds, viewer.Resyncs.Value(), viewer.ResyncCoalesced.Value(),
		c.WAS.PointQueries.Value(), viewer.FlowCoalesced.Value())
}
