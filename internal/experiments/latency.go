package experiments

import (
	"time"

	"bladerunner/internal/sim"
)

// Per-component latency models, calibrated to the sub-operation means the
// paper reports in Table 3 and the CDF ranges of Fig 9. These are inputs
// (see the package comment); the experiments verify that composing them
// through the system's structure reproduces the paper's end-to-end
// distributions.
//
// Table 3 anchor points:
//   - WAS receives update → sent to Pylon: 2,000 ms for LVC (1,790 ms of
//     which is ML ranking), 240 ms for apps without ranking.
//   - Pylon publish → sent to n BRASSes: 100 ms (<10k subscribers),
//     109 ms (>=10k).
//   - BRASS receives update → sent to devices: 76 ms for non-buffering
//     apps, 60 ms of which is the WAS payload query.
//   - Subscription request at gateway → replicated onto Pylon: 73 ms.
type LatencyModels struct {
	// EdgeToWAS is the device/edge → WAS hop for an update request
	// (Fig 9 top: roughly 10–260 ms).
	EdgeToWAS sim.Dist
	// WASRanking is the ML quality-ranking time for rankable updates.
	WASRanking sim.Dist
	// WASBase is WAS processing excluding ranking (the LVC path).
	WASBase sim.Dist
	// WASBaseOther is the full WAS processing for apps without ranking.
	WASBaseOther sim.Dist
	// PylonFanout is publish-receipt → event sent to subscribed hosts.
	PylonFanout sim.Dist
	// PylonPerSubscriber is the marginal per-10k-subscriber cost.
	PylonPerSubscriber time.Duration
	// BRASSQueryWAS is the payload fetch + privacy check (60 ms mean).
	BRASSQueryWAS sim.Dist
	// BRASSProcess is BRASS-side compute excluding the WAS query.
	BRASSProcess sim.Dist
	// PushToDevice is the BRASS → edge → device delivery hop.
	PushToDevice sim.Dist
	// LVCPushToDevice is the same hop for LVC, which competes with video
	// bytes at the edge (Fig 9: significantly higher).
	LVCPushToDevice sim.Dist
	// SubscribeRegister is gateway receipt → subscription replicated
	// onto Pylon's KV quorum.
	SubscribeRegister sim.Dist
	// MobileSubscribe is the device-measured subscription latency (the
	// 490/970 ms numbers dominated by mobile network overhead).
	MobileSubscribeNAEU sim.Dist
	MobileSubscribeAll  sim.Dist
}

// DefaultLatencies returns the calibrated models.
func DefaultLatencies() LatencyModels {
	return LatencyModels{
		EdgeToWAS:           sim.LogNormalFromMedian(55*time.Millisecond, 0.55),
		WASRanking:          sim.Exponential{MeanVal: 1790 * time.Millisecond, Min: 900 * time.Millisecond},
		WASBase:             sim.Exponential{MeanVal: 210 * time.Millisecond, Min: 40 * time.Millisecond},
		WASBaseOther:        sim.Exponential{MeanVal: 240 * time.Millisecond, Min: 50 * time.Millisecond},
		PylonFanout:         sim.Exponential{MeanVal: 100 * time.Millisecond, Min: 25 * time.Millisecond},
		PylonPerSubscriber:  9 * time.Millisecond,
		BRASSQueryWAS:       sim.Exponential{MeanVal: 60 * time.Millisecond, Min: 15 * time.Millisecond},
		BRASSProcess:        sim.Exponential{MeanVal: 16 * time.Millisecond, Min: 2 * time.Millisecond},
		PushToDevice:        sim.LogNormalFromMedian(220*time.Millisecond, 0.75),
		LVCPushToDevice:     sim.LogNormalFromMedian(450*time.Millisecond, 0.85),
		SubscribeRegister:   sim.Exponential{MeanVal: 73 * time.Millisecond, Min: 20 * time.Millisecond},
		MobileSubscribeNAEU: sim.LogNormalFromMedian(470*time.Millisecond, 0.25),
		MobileSubscribeAll:  sim.LogNormalFromMedian(820*time.Millisecond, 0.55),
	}
}

// PollModels are the latency inputs for the client-side polling variant of
// LiveVideoComments (Fig 6): the poll interval, the backend's response
// time under load (heavy-tailed — the source of polling's long tail), and
// the time for a freshly posted comment to become visible to poll queries.
type PollModels struct {
	// Interval between polls (production polled every 1–2 s).
	Interval time.Duration
	// StoreVisible is comment creation → visible to TAO range queries.
	StoreVisible sim.Dist
	// Response is the poll's request–response time: a lognormal body
	// with a Pareto overload tail (range/intersect queries across many
	// shards stall when the video is hot).
	Response sim.Dist
	// MissProb is the chance a visible comment is missed by one poll
	// (index lag / pagination), forcing it to wait another interval.
	MissProb float64
}

// DefaultPollModels returns the calibrated polling inputs.
func DefaultPollModels() PollModels {
	return PollModels{
		Interval:     2 * time.Second,
		StoreVisible: sim.Exponential{MeanVal: 700 * time.Millisecond, Min: 150 * time.Millisecond},
		Response: sim.MustMixture(
			[]sim.Dist{
				sim.LogNormalFromMedian(1100*time.Millisecond, 0.5),
				sim.Pareto{Xm: 3600 * time.Millisecond, Alpha: 1.15, Cap: 60 * time.Second},
			},
			[]float64{0.85, 0.15},
		),
		MissProb: 0.25,
	}
}

// StreamModels are the latency inputs for the Bladerunner (stream) variant
// of LiveVideoComments in Fig 6.
type StreamModels struct {
	L LatencyModels
	// BufferWait is the time a comment sits in the per-viewer ranked
	// buffer before being popped at the rate limit; the product caps it
	// at 10 s (comments older than that are discarded as irrelevant).
	BufferWait sim.Dist
	// BufferCap is the product's 10-second relevance cap.
	BufferCap time.Duration
}

// DefaultStreamModels returns the calibrated streaming inputs.
func DefaultStreamModels() StreamModels {
	return StreamModels{
		L:          DefaultLatencies(),
		BufferWait: sim.Exponential{MeanVal: 650 * time.Millisecond},
		BufferCap:  10 * time.Second,
	}
}
