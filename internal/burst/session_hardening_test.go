package burst

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/sim"
)

// TestKeepaliveStopCancelsInFlightTimeoutTimer is the regression test for
// the Stop leak: the pong-timeout timer armed by tick() was never stored in
// k.cancel, so Stop left it pending (and firing) in the scheduler. With a
// sim.Engine the leak is directly observable: Pending() must drop to zero
// the moment Stop returns, and running the engine afterwards must execute
// nothing.
func TestKeepaliveStopCancelsInFlightTimeoutTimer(t *testing.T) {
	a, b := pipePair()
	sa := NewSession("a", a, HandlerFuncs{})
	sb := NewSession("b", b, HandlerFuncs{}) // answers pings automatically
	defer sa.Close()
	defer sb.Close()

	eng := sim.NewEngine(time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC))
	k := StartKeepalive(sa, eng, 10*time.Millisecond, 30*time.Millisecond)
	if got := eng.Pending(); got != 1 {
		t.Fatalf("after start: %d pending timers, want 1 (interval tick)", got)
	}

	// Fire the interval tick: it pings the peer and arms the pong-timeout
	// timer. That timer is now the keepalive's only pending event.
	if !eng.Step() {
		t.Fatal("no tick event to execute")
	}
	if got := eng.Pending(); got != 1 {
		t.Fatalf("after tick: %d pending timers, want 1 (pong timeout)", got)
	}

	k.Stop()
	if got := eng.Pending(); got != 0 {
		t.Fatalf("after Stop: %d pending timers, want 0 — Stop leaked the in-flight timeout timer", got)
	}
	before := eng.Executed()
	eng.Run()
	if got := eng.Executed(); got != before {
		t.Fatalf("%d timer(s) fired after Stop returned", got-before)
	}
	select {
	case <-sa.Done():
		t.Fatal("session closed by a keepalive that was stopped")
	default:
	}
}

// TestKeepaliveTickDoesNotRearmAfterStop covers the second half of the
// bug: a tick already executing when Stop is called must not arm a fresh
// pong-timeout timer afterwards.
func TestKeepaliveTickDoesNotRearmAfterStop(t *testing.T) {
	a, b := pipePair()
	sa := NewSession("a", a, HandlerFuncs{})
	sb := NewSession("b", b, HandlerFuncs{})
	defer sa.Close()
	defer sb.Close()

	eng := sim.NewEngine(time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC))
	k := StartKeepalive(sa, eng, 10*time.Millisecond, 30*time.Millisecond)
	// Stop before the tick runs, then force the (already-cancelled)
	// tick body directly — this is the interleaving where Stop wins the
	// race but tick still executes.
	k.Stop()
	k.tick()
	if got := eng.Pending(); got != 0 {
		t.Fatalf("tick after Stop armed %d timer(s)", got)
	}
}

// errorConn blocks reads until an error is injected, and swallows writes.
type errorConn struct {
	errc   chan error
	closed chan struct{}
	once   sync.Once
}

func newErrorConn() *errorConn {
	return &errorConn{errc: make(chan error, 1), closed: make(chan struct{})}
}

func (c *errorConn) Read(p []byte) (int, error) {
	select {
	case err := <-c.errc:
		return 0, err
	case <-c.closed:
		return 0, io.ErrClosedPipe
	}
}

func (c *errorConn) Write(p []byte) (int, error) { return len(p), nil }

func (c *errorConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// TestHandleCloseCause pins down the documented HandleClose contract:
// nil for a locally initiated close, io.EOF for a clean peer close, and
// the transport error for an error close. Before the fix, peer closes
// were collapsed into nil, indistinguishable from local closes.
func TestHandleCloseCause(t *testing.T) {
	injected := errors.New("transport exploded")
	cases := []struct {
		name string
		run  func(t *testing.T) error // returns the err delivered to HandleClose
		want func(error) bool
		desc string
	}{
		{
			name: "local-close",
			run: func(t *testing.T) error {
				a, b := pipePair()
				closed := make(chan error, 1)
				sa := NewSession("a", a, HandlerFuncs{OnClose: func(err error) { closed <- err }})
				sb := NewSession("b", b, HandlerFuncs{})
				defer sb.Close()
				sa.Close()
				return <-closed
			},
			want: func(err error) bool { return err == nil },
			desc: "nil",
		},
		{
			name: "peer-close",
			run: func(t *testing.T) error {
				a, b := pipePair()
				closed := make(chan error, 1)
				NewSession("a", a, HandlerFuncs{OnClose: func(err error) { closed <- err }})
				sb := NewSession("b", b, HandlerFuncs{})
				sb.Close()
				return <-closed
			},
			want: func(err error) bool { return errors.Is(err, io.EOF) },
			desc: "io.EOF",
		},
		{
			name: "error-close",
			run: func(t *testing.T) error {
				c := newErrorConn()
				closed := make(chan error, 1)
				NewSession("a", c, HandlerFuncs{OnClose: func(err error) { closed <- err }})
				c.errc <- injected
				return <-closed
			},
			want: func(err error) bool { return errors.Is(err, injected) },
			desc: "the transport error",
		},
		{
			name: "torn-frame-close",
			run: func(t *testing.T) error {
				// A header cut mid-way is a torn frame, not a clean
				// hangup: it must NOT surface as io.EOF.
				c := newErrorConn()
				closed := make(chan error, 1)
				NewSession("a", c, HandlerFuncs{OnClose: func(err error) { closed <- err }})
				c.errc <- io.ErrUnexpectedEOF
				return <-closed
			},
			want: func(err error) bool {
				return errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF)
			},
			desc: "io.ErrUnexpectedEOF",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if !tc.want(err) {
				t.Fatalf("HandleClose got %v, want %s", err, tc.desc)
			}
		})
	}
}

// TestSessionErrReportsPeerClose checks Err() mirrors the HandleClose
// cause for peer closes.
func TestSessionErrReportsPeerClose(t *testing.T) {
	a, b := pipePair()
	closed := make(chan error, 1)
	sa := NewSession("a", a, HandlerFuncs{OnClose: func(err error) { closed <- err }})
	sb := NewSession("b", b, HandlerFuncs{})
	sb.Close()
	<-closed
	if err := sa.Err(); !errors.Is(err, io.EOF) {
		t.Fatalf("Err() = %v after peer close, want io.EOF", err)
	}
}

// recordingConn counts whole Write calls and can hold one write open until
// released, so a test can park a sender inside the write path.
type recordingConn struct {
	mu     sync.Mutex
	writes int
	gate   chan struct{} // first write blocks on this when set
	gated  bool
	closed chan struct{}
	once   sync.Once
}

func (c *recordingConn) Read(p []byte) (int, error) {
	<-c.closed
	return 0, io.ErrClosedPipe
}

func (c *recordingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	gate := c.gate
	hold := c.gated
	c.gated = false // only the first write parks
	c.mu.Unlock()
	if hold {
		<-gate
	}
	return len(p), nil
}

func (c *recordingConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *recordingConn) writeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// TestSendOnConcurrentlyClosedSession is the regression test for the
// check-then-write race: sender B passes the closed check, waits on the
// write lock behind a slow sender A, and the session closes before B
// acquires it. B must get ErrSessionClosed and write nothing — before the
// fix its frame went onto the dead transport.
func TestSendOnConcurrentlyClosedSession(t *testing.T) {
	conn := &recordingConn{gate: make(chan struct{}), gated: true, closed: make(chan struct{})}
	s := NewSession("s", conn, HandlerFuncs{})

	aDone := make(chan error, 1)
	go func() { aDone <- s.Send(Frame{Type: FramePing}) }()
	waitFor(t, "sender A inside Write", func() bool { return conn.writeCount() == 1 })

	bDone := make(chan error, 1)
	go func() { bDone <- s.Send(Frame{Type: FramePong}) }()
	// Give B time to pass any pre-lock closed check and park on the write
	// lock held by A.
	time.Sleep(50 * time.Millisecond)

	s.Close()
	close(conn.gate) // release A

	if err := <-bDone; !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("B's Send = %v, want ErrSessionClosed", err)
	}
	<-aDone
	if got := conn.writeCount(); got != 1 {
		t.Fatalf("transport saw %d writes, want 1 — a frame was written to a closed session", got)
	}
}

// TestSendAfterPeerVanishesReturnsSessionClosed: once the session is
// closed (here by the peer), later sends report ErrSessionClosed rather
// than a raw transport error.
func TestSendAfterPeerVanishesReturnsSessionClosed(t *testing.T) {
	a, b := pipePair()
	closed := make(chan error, 1)
	sa := NewSession("a", a, HandlerFuncs{OnClose: func(err error) { closed <- err }})
	_ = b.Close() // raw peer hangup, no session on the far side
	<-closed
	if err := sa.Send(Frame{Type: FramePing}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Send = %v, want ErrSessionClosed", err)
	}
}
