package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternStableHandles(t *testing.T) {
	tb := New()
	a := tb.Intern("/TI/1/1")
	b := tb.Intern("/TI/1/2")
	if a == None || b == None {
		t.Fatalf("valid handles must not be None: a=%d b=%d", a, b)
	}
	if a == b {
		t.Fatalf("distinct strings got the same handle %d", a)
	}
	if got := tb.Intern("/TI/1/1"); got != a {
		t.Fatalf("re-intern changed the handle: %d != %d", got, a)
	}
	if got := tb.StringOf(a); got != "/TI/1/1" {
		t.Fatalf("StringOf(%d) = %q", a, got)
	}
	if got := tb.StringOf(b); got != "/TI/1/2" {
		t.Fatalf("StringOf(%d) = %q", b, got)
	}
	if h, ok := tb.Lookup("/TI/1/2"); !ok || h != b {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", h, ok, b)
	}
	if _, ok := tb.Lookup("nope"); ok {
		t.Fatal("Lookup of never-interned string reported ok")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

func TestInternDenseFromOne(t *testing.T) {
	tb := New()
	for i := 0; i < 100; i++ {
		h := tb.Intern(fmt.Sprintf("s%d", i))
		if h != uint32(i+1) {
			t.Fatalf("handle %d for %dth string, want dense %d", h, i, i+1)
		}
	}
}

func TestInternZeroAndOutOfRange(t *testing.T) {
	tb := New()
	if got := tb.StringOf(None); got != "" {
		t.Fatalf("StringOf(None) = %q, want empty", got)
	}
	if got := tb.StringOf(999); got != "" {
		t.Fatalf("StringOf(out-of-range) = %q, want empty", got)
	}
}

// TestInternConcurrent hammers Intern and StringOf from many goroutines
// under -race: readers must always observe either "" (not yet published)
// or the exact interned string, never a torn slice.
func TestInternConcurrent(t *testing.T) {
	tb := New()
	const writers, strsPer = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < strsPer; i++ {
				s := fmt.Sprintf("w%d-%d", w, i)
				h := tb.Intern(s)
				if got := tb.StringOf(h); got != s {
					t.Errorf("StringOf(%d) = %q, want %q", h, got, s)
					return
				}
			}
		}(w)
	}
	// Concurrent readers sweeping the whole handle space.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				_ = tb.StringOf(uint32(i % (writers*strsPer + 1)))
			}
		}()
	}
	wg.Wait()
	if tb.Len() != writers*strsPer {
		t.Fatalf("Len = %d, want %d", tb.Len(), writers*strsPer)
	}
	// Every handle must round-trip.
	for w := 0; w < writers; w++ {
		for i := 0; i < strsPer; i++ {
			s := fmt.Sprintf("w%d-%d", w, i)
			h, ok := tb.Lookup(s)
			if !ok || tb.StringOf(h) != s {
				t.Fatalf("round-trip failed for %q: h=%d ok=%v got=%q", s, h, ok, tb.StringOf(h))
			}
		}
	}
}

// BenchmarkInternStringOfParallel measures the lock-free read side: every
// core resolving handles concurrently with zero shared writes.
func BenchmarkInternStringOfParallel(b *testing.B) {
	tb := New()
	const n = 1024
	for i := 0; i < n; i++ {
		tb.Intern(fmt.Sprintf("/TI/%d/%d", i, i))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		h := uint32(1)
		for pb.Next() {
			if tb.StringOf(h) == "" {
				b.Fatal("unexpected miss")
			}
			h++
			if h > n {
				h = 1
			}
		}
	})
}

// BenchmarkInternHit measures re-interning an existing string (the
// registration-path cache hit).
func BenchmarkInternHit(b *testing.B) {
	tb := New()
	tb.Intern("brass-us-east-0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tb.Intern("brass-us-east-0")
	}
}
