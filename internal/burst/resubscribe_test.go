package burst

import (
	"testing"
	"time"
)

// These tests pin the BURST error paths a resubscribing device can hit: a
// corrupted stored request, a SID collision after a buggy reconnect, junk
// control frames, and a server rewrite racing a client-side resubscribe.
// The protocol's stance in every case is "drop the bad frame, keep the
// session" — a resubscribe storm after a regional failover must not let one
// malformed stream take down the multiplexed session carrying thousands of
// healthy ones.

// rawServer wires a ServerSession against a raw Session so tests can inject
// hand-crafted (including malformed) frames upstream.
func newRawServer(t *testing.T) (*Session, *ServerSession, *echoServer) {
	t.Helper()
	a, b := pipePair()
	srv := &echoServer{}
	ss := NewServerSession("brass", b, srv)
	raw := NewSession("raw-client", a, HandlerFuncs{})
	t.Cleanup(func() { raw.Close(); ss.Close() })
	return raw, ss, srv
}

func TestResubscribeErrorPaths(t *testing.T) {
	type step struct {
		frame Frame
		// msg, when non-nil, is encoded and sent instead of frame.Payload.
		msg any
	}
	cases := []struct {
		name        string
		steps       []step
		wantStreams int    // streams registered after all steps
		wantTopic   string // topic of stream 0 ("" = no stream expected)
	}{
		{
			// A device resubscribes with a stored request that was
			// corrupted on disk: the frame decodes as garbage JSON.
			name: "malformed subscribe payload dropped",
			steps: []step{
				{frame: Frame{Type: FrameSubscribe, SID: 1, Payload: []byte(`{"header":`)}},
			},
			wantStreams: 0,
		},
		{
			// A malformed subscribe must not poison the session: the next
			// well-formed resubscribe on another SID still lands.
			name: "session survives malformed subscribe",
			steps: []step{
				{frame: Frame{Type: FrameSubscribe, SID: 1, Payload: []byte(`not json at all`)}},
				{frame: Frame{Type: FrameSubscribe, SID: 2}, msg: Subscribe{Header: Header{HdrTopic: "/MB/ok"}}},
			},
			wantStreams: 1,
			wantTopic:   "/MB/ok",
		},
		{
			// A buggy client resubscribes reusing a live SID: the second
			// subscribe is a protocol violation and is dropped, and the
			// original stream (and its stored request) is untouched.
			name: "duplicate sid keeps first stream",
			steps: []step{
				{frame: Frame{Type: FrameSubscribe, SID: 7}, msg: Subscribe{Header: Header{HdrTopic: "/MB/first"}}},
				{frame: Frame{Type: FrameSubscribe, SID: 7}, msg: Subscribe{Header: Header{HdrTopic: "/MB/second"}}},
			},
			wantStreams: 1,
			wantTopic:   "/MB/first",
		},
		{
			// Cancel with a garbage payload: dropped, stream stays open.
			name: "malformed cancel ignored",
			steps: []step{
				{frame: Frame{Type: FrameSubscribe, SID: 3}, msg: Subscribe{Header: Header{HdrTopic: "/MB/live"}}},
				{frame: Frame{Type: FrameCancel, SID: 3, Payload: []byte(`{{{{`)}},
			},
			wantStreams: 1,
			wantTopic:   "/MB/live",
		},
		{
			// Cancel and ack for a SID the server never saw (the stream
			// died in a failover the client hasn't noticed): no-ops.
			name: "cancel and ack on unknown stream",
			steps: []step{
				{frame: Frame{Type: FrameCancel, SID: 99}, msg: Cancel{Reason: "stale"}},
				{frame: Frame{Type: FrameAck, SID: 99}, msg: Ack{Seq: 12}},
				{frame: Frame{Type: FrameSubscribe, SID: 4}, msg: Subscribe{Header: Header{HdrTopic: "/MB/after"}}},
			},
			wantStreams: 1,
			wantTopic:   "/MB/after",
		},
		{
			// Ack with a garbage payload: dropped.
			name: "malformed ack ignored",
			steps: []step{
				{frame: Frame{Type: FrameSubscribe, SID: 5}, msg: Subscribe{Header: Header{HdrTopic: "/MB/acked"}}},
				{frame: Frame{Type: FrameAck, SID: 5, Payload: []byte(`"seq": oops`)}},
			},
			wantStreams: 1,
			wantTopic:   "/MB/acked",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, ss, srv := newRawServer(t)
			for _, s := range tc.steps {
				if s.msg != nil {
					if err := raw.SendMsg(s.frame.Type, s.frame.SID, s.msg); err != nil {
						t.Fatal(err)
					}
					continue
				}
				if err := raw.Send(s.frame); err != nil {
					t.Fatal(err)
				}
			}
			if tc.wantStreams > 0 {
				waitFor(t, "expected streams", func() bool {
					return len(ss.Streams()) == tc.wantStreams
				})
			} else {
				// Negative case: give the pipe a moment to deliver.
				time.Sleep(30 * time.Millisecond)
			}
			if got := len(ss.Streams()); got != tc.wantStreams {
				t.Fatalf("server tracks %d streams, want %d", got, tc.wantStreams)
			}
			if tc.wantTopic != "" {
				waitFor(t, "stream registered with handler", func() bool { return srv.stream(0) != nil })
				if got := srv.stream(0).Request().Header[HdrTopic]; got != tc.wantTopic {
					t.Fatalf("stream 0 topic = %q, want %q", got, tc.wantTopic)
				}
			}
		})
	}
}

// TestRewriteRacingResubscribe drives the failover interleaving the durable
// log's cursor header depends on: the server issues a rewrite at the same
// moment the client cancels and resubscribes. The late rewrite addressed to
// the old SID must be dropped by the client (the old stream is gone), and
// the new stream's stored request must be exactly what the client sent —
// never a splice of old-stream state.
func TestRewriteRacingResubscribe(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, err := cli.Subscribe(Subscribe{Header: Header{
		HdrApp:    "messenger",
		HdrTopic:  "/MB/42",
		HdrCursor: "1.5",
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	oldSS := srv.stream(0)

	// Client side wins the race: the old stream is cancelled and the stored
	// (clamped) request is replayed on a fresh SID before the server's
	// rewrite arrives.
	stored := st.Request()
	if err := st.Cancel("resubscribe"); err != nil {
		t.Fatal(err)
	}
	st2, err := cli.Resubscribe(stored)
	if err != nil {
		t.Fatal(err)
	}
	if st2.SID() == st.SID() {
		t.Fatal("resubscribe reused the old SID")
	}

	// Server side, unaware, rewrites the OLD stream's cursor forward. The
	// stream is already terminated server-side (cancel landed first on the
	// ordered session), so the rewrite errors locally...
	if err := oldSS.RewriteHeaderField(HdrCursor, "1.9"); err == nil {
		// ...or, if the cancel hasn't been dispatched yet, the rewrite hits
		// the wire addressed to the old SID and the client must drop it.
		t.Log("rewrite sent before cancel dispatched; relying on client-side drop")
	}

	waitFor(t, "new stream", func() bool { return len(cli.Streams()) == 1 })
	time.Sleep(30 * time.Millisecond) // let any late rewrite arrive

	// The new stream's request is exactly the replayed one — the racing
	// rewrite never spliced into it.
	got := st2.Request()
	if got.Header[HdrCursor] != "1.5" {
		t.Errorf("new stream cursor = %q, want the replayed %q", got.Header[HdrCursor], "1.5")
	}
	if got.Header[HdrTopic] != "/MB/42" || got.Header[HdrApp] != "messenger" {
		t.Errorf("resubscribed request lost fields: %+v", got.Header)
	}

	// And the server can rewrite the NEW stream normally.
	waitFor(t, "server sees resubscribe", func() bool { return srv.stream(1) != nil })
	if err := srv.stream(1).RewriteHeaderField(HdrCursor, "1.11"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rewrite applied to new stream", func() bool {
		return st2.Request().Header[HdrCursor] == "1.11"
	})
}
