package region

import (
	"sync"

	"bladerunner/internal/burst"
	"bladerunner/internal/edge"
)

// Router is a region-aware upstream router: it prefers targets in the
// caller's home region, then fails over to healthy remote regions in
// topology priority order, skipping regions that are down and regions the
// home region cannot currently reach. Within a region it round-robins.
//
// Wrapped in an edge.StickyRouter it yields the paper's geo-failover
// behaviour: a resubscribe first honours the sticky BRASS header; when
// that host (or its whole region) is gone, the fallback lands the stream
// on the closest healthy region and the serving BRASS rewrites the sticky
// header to itself — cross-region failover as a stream rewrite, not a new
// session.
type Router struct {
	topo *Topology
	home string

	mu      sync.Mutex
	targets map[string][]string // region → targets, insertion order
	next    map[string]int      // region → round-robin cursor
}

// NewRouter builds a router for callers homed in home; populate it with
// AddTarget. Routers are tier-scoped (a POP router holds proxies, a proxy
// router holds BRASS hosts), so the caller picks which targets belong.
func NewRouter(topo *Topology, home string) *Router {
	return &Router{
		topo:    topo,
		home:    home,
		targets: make(map[string][]string),
		next:    make(map[string]int),
	}
}

// AddTarget registers a routable target in region.
func (r *Router) AddTarget(region, target string) {
	r.mu.Lock()
	r.targets[region] = append(r.targets[region], target)
	r.mu.Unlock()
}

// Route implements edge.Router.
func (r *Router) Route(_ burst.Subscribe, avoid map[string]bool) (string, error) {
	// Pass 1: home region first, then remote regions in priority order
	// over reachable links.
	regions := append([]string{r.home}, r.remoteRegions()...)
	for _, region := range regions {
		if !r.topo.RegionUp(region) {
			continue
		}
		if region != r.home && !r.topo.LinkUp(r.home, region) {
			continue
		}
		if t, ok := r.pick(region, avoid); ok {
			return t, nil
		}
	}
	// Pass 2: every region looked dead or avoided. Routing on a possibly-
	// stale topology beats refusing outright (the dial gate is the final
	// arbiter), so hand out any non-avoided target.
	for _, region := range regions {
		if t, ok := r.pick(region, avoid); ok {
			return t, nil
		}
	}
	return "", edge.ErrNoRoute
}

// remoteRegions returns every region except home, in priority order.
func (r *Router) remoteRegions() []string {
	all := r.topo.Regions()
	out := make([]string, 0, len(all)-1)
	for _, region := range all {
		if region != r.home {
			out = append(out, region)
		}
	}
	return out
}

// pick round-robins over region's targets, skipping avoided ones.
func (r *Router) pick(region string, avoid map[string]bool) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := r.targets[region]
	for i := 0; i < len(ts); i++ {
		t := ts[r.next[region]%len(ts)]
		r.next[region]++
		if !avoid[t] {
			return t, true
		}
	}
	return "", false
}

var _ edge.Router = (*Router)(nil)
