package lint

import (
	"go/ast"
	"go/types"
)

// UncheckedUnsubscribe flags statement-level calls to the exported
// Pylon/BRASS/BURST surfaces that return an error which the caller silently
// drops. Subscription bookkeeping is the CP half of the system: a dropped
// error from Subscribe/Unsubscribe/Publish leaves the replicated
// subscription state and the host's local interest table disagreeing, which
// is exactly the drift the paper's quorum-repair machinery exists to
// prevent. Deliberate discards must be spelled `_ = call(...)` (or carry a
// //brlint:allow comment), so reviewers can see the decision.
type UncheckedUnsubscribe struct {
	// ModPath qualifies the audited packages.
	ModPath string
}

func (r *UncheckedUnsubscribe) Name() string { return "unchecked-unsubscribe" }

func (r *UncheckedUnsubscribe) Doc() string {
	return "error results from the pylon/brass/burst public surfaces must be checked or explicitly discarded"
}

func (r *UncheckedUnsubscribe) audited() map[string]bool {
	return map[string]bool{
		r.ModPath + "/internal/pylon": true,
		r.ModPath + "/internal/brass": true,
		r.ModPath + "/internal/burst": true,
	}
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

func (r *UncheckedUnsubscribe) Check(c *Context) {
	audited := r.audited()
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(c.Pkg.Info, call)
			if fn == nil || !fn.Exported() || fn.Pkg() == nil || !audited[fn.Pkg().Path()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			c.Reportf(call.Pos(), "result of %s is discarded; check the error or write `_ = %s(...)`", fn.FullName(), fn.Name())
			return true
		})
	}
}
