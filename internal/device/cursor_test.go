package device

import (
	"net"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/sim"
)

// These are white-box tests of the device's durable-log recovery path: the
// cursor clamp on resubscribe, and the coalescing of both recovery flavors
// (cursor resumes and point-query resyncs) under repeated shed markers.

// newIdleDevice builds a device on a manual engine whose timers never fire:
// After(0, fn) stays pending, which makes pending-state assertions
// deterministic.
func newIdleDevice(t *testing.T) (*Device, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine(time.Unix(0, 0))
	d := New(Config{User: 7, POPs: []string{"pop-0"}}, nil, nil, eng)
	t.Cleanup(d.Close)
	return d, eng
}

func newIdleStream(d *Device) *Stream {
	return &Stream{
		dev:     d,
		Updates: make(chan burst.Delta, 4),
		Flow:    make(chan burst.FlowCode, 4),
		req:     burst.Subscribe{Header: burst.Header{burst.HdrApp: "messenger"}},
		bo:      d.backoff.Child(1),
	}
}

func TestCursorResumeCoalesces(t *testing.T) {
	d, _ := newIdleDevice(t)
	st := newIdleStream(d)
	st.req.Header[burst.HdrCursor] = "1.4"

	// First marker schedules the resume; the engine never runs, so it
	// stays pending and the next two markers coalesce into it.
	st.triggerCursorResume()
	st.triggerCursorResume()
	st.triggerCursorResume()
	if got := d.ResyncCoalesced.Value(); got != 2 {
		t.Fatalf("ResyncCoalesced = %d, want 2", got)
	}
	if got := d.CursorResumes.Value(); got != 0 {
		t.Fatalf("CursorResumes = %d before the timer fired", got)
	}
}

func TestPointResyncCoalesces(t *testing.T) {
	d, _ := newIdleDevice(t)
	st := newIdleStream(d)
	st.SetResync(func(uint64) string { return "q" }, nil)

	st.triggerResync()
	st.triggerResync()
	st.triggerResync()
	if got := d.ResyncCoalesced.Value(); got != 2 {
		t.Fatalf("ResyncCoalesced = %d, want 2", got)
	}
	st.mu.Lock()
	pending, again := st.resyncPending, st.resyncAgain
	st.mu.Unlock()
	if !pending || !again {
		t.Fatalf("resyncPending=%v resyncAgain=%v, want both true", pending, again)
	}
}

// TestResubscribeClampsCursor proves the client half of never-fabricate:
// a resubscribe lowers a server-advanced cursor to the device's applied
// seq, and leaves an honest (lower) cursor untouched.
func TestResubscribeClampsCursor(t *testing.T) {
	cases := []struct {
		name   string
		cursor string
		seq    uint64
		want   string
	}{
		{"over-claim lowered", "2.9", 4, "2.4"},
		{"honest claim untouched", "2.3", 4, "2.3"},
		{"sentinel passes through", "earliest", 4, "earliest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, _ := newIdleDevice(t)
			st := newIdleStream(d)
			st.req.Header[burst.HdrCursor] = tc.cursor
			st.seq = tc.seq

			a, b := net.Pipe()
			var (
				mu   sync.Mutex
				subs []burst.Subscribe
			)
			srv := burst.NewServerSession("brass", b, burst.ServerHandlerFuncs{
				Subscribe: func(_ *burst.ServerStream, sub burst.Subscribe) {
					mu.Lock()
					subs = append(subs, sub)
					mu.Unlock()
				},
			})
			cli := burst.NewClient("dev", a, nil)
			t.Cleanup(func() { cli.Close(); srv.Close() })

			st.resubscribe(cli)
			deadline := time.Now().Add(5 * time.Second)
			for {
				mu.Lock()
				n := len(subs)
				mu.Unlock()
				if n > 0 || time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(subs) != 1 {
				t.Fatalf("server saw %d subscribes", len(subs))
			}
			if got := subs[0].Header[burst.HdrCursor]; got != tc.want {
				t.Fatalf("resubscribed cursor = %q, want %q", got, tc.want)
			}
		})
	}
}
