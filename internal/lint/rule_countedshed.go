package lint

import (
	"go/ast"
	"strings"
)

// CountedShed flags silent best-effort drops. The pattern
//
//	select {
//	case ch <- v:
//	default: // drop
//	}
//
// is the repository's sanctioned way to shed work under overload — but a
// shed that no metrics counter records is invisible: experiments cannot
// account for it, the conservation checks in tests cannot balance, and a
// production drop site regresses without anyone noticing. Every select
// containing a send clause AND a default clause must therefore record the
// drop on an internal/metrics instrument (Counter.Inc/Add, Gauge.Add,
// Histogram/CountHistogram.Observe, TimeSeries.Inc/Add), either
//
//   - in the default body itself (the classic counted-drop site), or
//   - in the statements following the select in the same block (the
//     evict-retry idiom: the first select's default falls through to a
//     companion receive-select that evicts the oldest item and counts it).
//
// Sends of the empty struct literal are exempt: a `ch <- struct{}{}`
// wake-token carries no data, so "dropping" it when the buffer already
// holds a token loses nothing.
type CountedShed struct {
	// ModPath qualifies the metrics package (ModPath + "/internal/metrics").
	ModPath string
}

func (r *CountedShed) Name() string { return "counted-shed" }

func (r *CountedShed) Doc() string {
	return "a select with a send and a default (best-effort drop) must count the shed on a metrics instrument"
}

// shedRecorders are the method names that count as recording a shed when
// invoked on an internal/metrics type.
var shedRecorders = map[string]bool{
	"Inc":     true,
	"Add":     true,
	"Observe": true,
}

func (r *CountedShed) Check(c *Context) {
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch x := n.(type) {
			case *ast.BlockStmt:
				list = x.List
			case *ast.CaseClause:
				list = x.Body
			case *ast.CommClause:
				list = x.Body
			default:
				return true
			}
			r.checkList(c, list)
			return true
		})
	}
}

// checkList examines one statement list: each select in it is analyzed with
// the statements after it as the fall-through continuation.
func (r *CountedShed) checkList(c *Context, list []ast.Stmt) {
	for i, st := range list {
		sel := asSelect(st)
		if sel == nil {
			continue
		}
		send, def := r.classify(sel)
		if send == nil || def == nil {
			continue
		}
		if r.recordsShed(c, def.Body) || r.recordsShed(c, list[i+1:]) {
			continue
		}
		c.Reportf(sel.Select,
			"best-effort drop is not counted: no metrics Inc/Add/Observe in the default body or after the select (silent shed)")
	}
}

// asSelect unwraps st to a select statement, looking through labels.
func asSelect(st ast.Stmt) *ast.SelectStmt {
	for {
		switch s := st.(type) {
		case *ast.SelectStmt:
			return s
		case *ast.LabeledStmt:
			st = s.Stmt
		default:
			return nil
		}
	}
}

// classify returns the select's first droppable send clause and its default
// clause (either may be nil). Wake-token sends of struct{}{} do not count:
// they carry no data, so nothing is lost when the buffer already holds one.
func (r *CountedShed) classify(sel *ast.SelectStmt) (send *ast.SendStmt, def *ast.CommClause) {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			def = cc
			continue
		}
		if s, ok := cc.Comm.(*ast.SendStmt); ok && send == nil && !isEmptyStructLit(s.Value) {
			send = s
		}
	}
	return send, def
}

// isEmptyStructLit reports whether e is the literal struct{}{}.
func isEmptyStructLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return false
	}
	st, ok := lit.Type.(*ast.StructType)
	return ok && (st.Fields == nil || len(st.Fields.List) == 0)
}

// recordsShed reports whether any statement in stmts (recursively,
// including nested selects and function literals) calls a shed-recording
// method on an internal/metrics type.
func (r *CountedShed) recordsShed(c *Context, stmts []ast.Stmt) bool {
	metricsPkg := r.ModPath + "/internal/metrics."
	for _, st := range stmts {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeFullName(c.Pkg.Info, call)
			if !strings.Contains(name, metricsPkg) {
				return true
			}
			if dot := strings.LastIndex(name, "."); dot >= 0 && shedRecorders[name[dot+1:]] {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
