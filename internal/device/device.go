// Package device simulates client devices: phones and browsers that issue
// initial GraphQL queries to a WAS, open BURST request-streams through a
// POP, render pushed updates, and recover from connection failures by
// re-dialing and resubscribing with each stream's stored (possibly
// rewritten) request — the device side of the paper's failure axioms (§4).
package device

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/durlog"
	"bladerunner/internal/edge"
	"bladerunner/internal/faults"
	"bladerunner/internal/metrics"
	"bladerunner/internal/overload"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/trace"
)

// ErrNotConnected is returned when subscribing while disconnected.
var ErrNotConnected = errors.New("device: not connected")

// Backend is the WAS surface a device consumes: initial reads, mutations,
// and the shed-then-resync point queries. *was.Server satisfies it
// directly (in-process cluster); the multi-process deployment uses a
// control-protocol client (internal/ctrl), so a device is oblivious to
// whether the WAS is a function call or a socket away.
type Backend interface {
	QueryIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error)
	MutateIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error)
	PointQueryIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error)
}

// Config parameterizes a Device.
type Config struct {
	// User is the identity streams subscribe as.
	User socialgraph.UserID
	// Region is the device's home region: its GraphQL reads are served by
	// that region's TAO tier and its mutations commit tagged with it, so
	// the region plane can replicate them outward. Empty means the primary
	// region (single-region clusters leave it unset).
	Region string
	// POPs are the edge targets the device can connect through, in
	// preference order. On failure it rotates to the next.
	POPs []string
	// ReconnectDelay is the base delay of the reconnect backoff (kept for
	// compatibility; it seeds Backoff.Base when that is zero).
	ReconnectDelay time.Duration
	// Backoff is the jittered-exponential policy pacing reconnects and
	// per-stream resubscribe retries. Zero fields default from
	// ReconnectDelay and faults.DefaultBackoff; jitter decorrelates mass
	// disconnects so a fleet of devices does not re-dial in lockstep.
	Backoff faults.BackoffPolicy
	// BackoffSeed seeds the backoff jitter RNG. Devices in experiments
	// use distinct seeds so their retry schedules diverge deterministically.
	BackoffSeed int64
	// MaxStreams caps concurrent request-streams (browser tabs allow up
	// to 60, mobile apps up to 20 per the paper). 0 = unlimited.
	MaxStreams int
	// Tracer, when set, stamps a stable trace-stream identity header onto
	// every subscription and closes a device.apply span per traced payload
	// delta. nil disables tracing on this device.
	Tracer *trace.Tracer
}

// Device is one simulated client.
type Device struct {
	cfg     Config
	dialer  edge.Dialer
	was     Backend
	sched   sim.Scheduler
	backoff *faults.Backoff

	mu        sync.Mutex
	client    *burst.Client
	popIdx    int
	streams   map[*Stream]bool
	closed    bool
	connected bool
	nextSalt  int64

	// Metrics.
	Updates      metrics.Counter
	FlowEvents   metrics.Counter
	Reconnects   metrics.Counter
	Polls        metrics.Counter
	Resubscribes metrics.Counter
	// RenderDrops counts payload deltas shed because the app's Updates
	// channel was full (the device-side best-effort hop).
	RenderDrops metrics.Counter
	// FlowCoalesced counts stale flow codes evicted so a newer one could
	// land — the Flow channel always delivers the latest state.
	FlowCoalesced metrics.Counter
	// Resyncs counts shed-then-resync point queries issued after an
	// upstream hop reported a shed gap.
	Resyncs metrics.Counter
	// ResyncCoalesced counts recovery triggers absorbed by one already in
	// flight — shed markers that did NOT become an extra point query or
	// resubscribe because the pending recovery covers them.
	ResyncCoalesced metrics.Counter
	// CursorResumes counts shed gaps repaired by resubscribing with the
	// durable-log cursor (clamped to the applied seq) instead of a WAS
	// point query — the log-backed recovery path.
	CursorResumes metrics.Counter
	// PeerCloses counts sessions the *edge* hung up cleanly (HandleClose
	// delivered io.EOF — e.g. a draining POP) as opposed to local closes
	// or transport failures. The reconnect path is the same either way.
	PeerCloses metrics.Counter
}

// Stream is one application-level subscription held by the device. Its
// channels survive reconnections: the device resubscribes transparently and
// keeps feeding the same Updates channel.
type Stream struct {
	dev *Device

	// Updates carries payload deltas across reconnects. Closed only when
	// the stream is cancelled or terminated by the server.
	Updates chan burst.Delta
	// Flow carries flow_status events (degraded/recovered/rerouted) so
	// the app can show connectivity state. Best-effort (drops if full).
	Flow chan burst.FlowCode

	mu     sync.Mutex
	cur    *burst.ClientStream
	curCli *burst.Client // session the current client stream lives on
	req    burst.Subscribe
	closed bool
	seq    uint64 // last payload seq seen

	// bo paces per-stream resubscribe retries; retryCancel is the pending
	// retry timer, cancelled on close or when a resubscribe supersedes it.
	bo          *faults.Backoff
	retryCancel func()

	// Shed-then-resync state (SetResync): when an upstream hop signals
	// FlowDegraded with a shed marker, deltas were dropped and the gap
	// cannot be trusted, so the device re-fetches authoritative state with
	// a WAS point query instead of waiting for pushes that never come.
	resyncBuild   func(lastSeq uint64) string
	resyncApply   func([]byte)
	resyncPending bool
	resyncAgain   bool

	// cursorPending coalesces cursor resumes: while one is scheduled,
	// further shed markers have nothing to add (the resubscribe replays
	// the whole clamped-cursor suffix, so there is no trailing re-run to
	// queue, unlike point-query resyncs).
	cursorPending bool
}

// New builds a device. dialer reaches POP targets; wasrv serves the initial
// queries and mutations ("HTTP" in production, a direct call in the
// in-process cluster, a ctrl client in the multi-process deployment).
func New(cfg Config, dialer edge.Dialer, wasrv Backend, sched sim.Scheduler) *Device {
	if sched == nil {
		sched = sim.RealClock{}
	}
	if cfg.ReconnectDelay <= 0 {
		cfg.ReconnectDelay = 50 * time.Millisecond
	}
	if cfg.Backoff.Base <= 0 {
		cfg.Backoff.Base = cfg.ReconnectDelay
	}
	seed := cfg.BackoffSeed
	if seed == 0 {
		seed = int64(cfg.User) + 1
	}
	return &Device{
		cfg:     cfg,
		dialer:  dialer,
		was:     wasrv,
		sched:   sched,
		backoff: faults.NewBackoff(cfg.Backoff, seed),
		streams: make(map[*Stream]bool),
	}
}

// Backoff exposes the device's reconnect backoff state (attempts, retry
// and saturation counters shared with the per-stream resubscribe retries).
func (d *Device) Backoff() *faults.Backoff { return d.backoff }

// Connect dials the current POP and starts the session.
func (d *Device) Connect() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("device: closed")
	}
	if d.connected {
		d.mu.Unlock()
		return nil
	}
	pop := d.cfg.POPs[d.popIdx%len(d.cfg.POPs)]
	d.mu.Unlock()

	rwc, err := d.dialer.Dial(pop)
	if err != nil {
		d.mu.Lock()
		d.popIdx++ // try another POP next time
		d.mu.Unlock()
		return fmt.Errorf("device: dial %s: %w", pop, err)
	}
	cli := burst.NewClient(fmt.Sprintf("device-%d", d.cfg.User), rwc, func(err error) {
		if errors.Is(err, io.EOF) {
			d.PeerCloses.Inc()
		}
		d.onSessionLost()
	})
	d.mu.Lock()
	d.client = cli
	d.connected = true
	d.mu.Unlock()
	return nil
}

// Connected reports whether a session is up.
func (d *Device) Connected() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.connected
}

// Close tears the device down; all streams close.
func (d *Device) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	cli := d.client
	streams := make([]*Stream, 0, len(d.streams))
	for st := range d.streams {
		streams = append(streams, st)
	}
	d.streams = make(map[*Stream]bool)
	d.mu.Unlock()
	if cli != nil {
		_ = cli.Close()
	}
	for _, st := range streams {
		st.shutdown()
	}
}

// Query issues an initial GraphQL read to the WAS (step 1 of Fig 3),
// served in the device's home region.
func (d *Device) Query(expr string) ([]byte, error) {
	d.Polls.Inc()
	return d.was.QueryIn(d.cfg.Region, d.cfg.User, expr)
}

// Mutate issues a GraphQL mutation to the WAS (Fig 4). The mutation is
// tagged with the device's home region so its events publish into the
// region-local Pylon first and replicate outward.
func (d *Device) Mutate(expr string) ([]byte, error) {
	return d.was.MutateIn(d.cfg.Region, d.cfg.User, expr)
}

// Subscribe opens a request-stream for app with the given subscription
// expression and optional extra header fields.
func (d *Device) Subscribe(app, subscription string, extra burst.Header) (*Stream, error) {
	d.mu.Lock()
	if !d.connected || d.client == nil {
		d.mu.Unlock()
		return nil, ErrNotConnected
	}
	if d.cfg.MaxStreams > 0 && len(d.streams) >= d.cfg.MaxStreams {
		d.mu.Unlock()
		return nil, fmt.Errorf("device: stream cap %d reached", d.cfg.MaxStreams)
	}
	cli := d.client
	d.mu.Unlock()

	d.mu.Lock()
	d.nextSalt++
	salt := d.nextSalt
	d.mu.Unlock()

	header := burst.Header{
		burst.HdrApp:          app,
		burst.HdrSubscription: subscription,
		burst.HdrUser:         fmt.Sprintf("%d", d.cfg.User),
	}
	if d.cfg.Tracer != nil {
		// Stable stream identity for the trace plane: rewrites patch other
		// keys and resubscription replays the stored request, so this value
		// survives every recovery path and joins pre/post-failure spans.
		header[burst.HdrTraceStream] = fmt.Sprintf("u%d/%s#%d", d.cfg.User, app, salt)
	}
	for k, v := range extra {
		header[k] = v
	}
	st := &Stream{
		dev:     d,
		Updates: make(chan burst.Delta, 256),
		Flow:    make(chan burst.FlowCode, 16),
		req:     burst.Subscribe{Header: header},
		bo:      d.backoff.Child(salt),
	}
	cs, err := cli.Subscribe(st.req)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	st.cur = cs
	st.curCli = cli
	st.mu.Unlock()

	d.mu.Lock()
	d.streams[st] = true
	d.mu.Unlock()
	go st.pump(cs)
	return st, nil
}

// Streams returns the number of open streams.
func (d *Device) Streams() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.streams)
}

// onSessionLost runs when the BURST session dies: schedule a reconnect that
// rotates POPs and resubscribes every stream with its stored request. The
// delay comes from the jittered backoff so a mass disconnect (a POP dying
// under thousands of devices) does not re-dial in lockstep.
func (d *Device) onSessionLost() {
	d.mu.Lock()
	d.connected = false
	d.client = nil
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return
	}
	d.sched.After(d.backoff.Next(), d.reconnect)
}

func (d *Device) reconnect() {
	d.mu.Lock()
	if d.closed || d.connected {
		d.mu.Unlock()
		return
	}
	d.popIdx++ // prefer an alternate POP after a failure
	d.mu.Unlock()

	if err := d.Connect(); err != nil {
		d.sched.After(d.backoff.Next(), d.reconnect)
		return
	}
	d.backoff.Reset()
	d.Reconnects.Inc()

	d.mu.Lock()
	cli := d.client
	streams := make([]*Stream, 0, len(d.streams))
	for st := range d.streams {
		streams = append(streams, st)
	}
	d.mu.Unlock()

	for _, st := range streams {
		// A successful attach — possibly to a different POP in a different
		// region after a geo-failover — starts the per-stream retry clock
		// fresh. Without this, a stream whose retries escalated against the
		// dead region carries that saturated delay into its FIRST retry on
		// the healthy one, stretching failover by up to Backoff.Cap.
		st.bo.Reset()
		st.resubscribe(cli)
	}
}

// resubscribe reopens the stream on a fresh session using the stored
// (possibly rewritten) request.
func (st *Stream) resubscribe(cli *burst.Client) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	// This attempt supersedes any pending per-stream retry.
	st.cancelRetryLocked()
	// Snapshot the request from the dead client stream: it holds the
	// latest rewritten state even though its session is gone.
	if st.cur != nil {
		st.req = st.cur.Request()
	}
	// Clamp the durable-log cursor to what this device actually APPLIED:
	// the server rewrote it forward as it delivered, but deltas past
	// st.seq died with the session. Lowering an over-claim is always
	// safe (the server re-serves a prefix the device dedups); raising
	// one would fabricate progress, which nothing in the system ever
	// does — Clamp only lowers.
	if c := st.req.Header[burst.HdrCursor]; c != "" {
		st.req.Header[burst.HdrCursor] = durlog.Clamp(c, st.seq)
	}
	req := st.req
	st.mu.Unlock()

	cs, err := cli.Resubscribe(req)
	if err != nil {
		// The session may still be alive (transient send failure) — do
		// not wait for the next session loss; schedule a per-stream
		// retry so the stream cannot strand.
		st.scheduleResubscribe()
		return
	}
	st.dev.Resubscribes.Inc()
	st.bo.Reset()
	st.mu.Lock()
	st.cur = cs
	st.curCli = cli
	st.mu.Unlock()
	st.pushFlow(burst.FlowRecovered)
	go st.pump(cs)
}

// scheduleResubscribe arms a per-stream retry through the device backoff.
// The retry fires only while the device holds a live session; if the
// session is down, the session-level reconnect path owns recovery.
func (st *Stream) scheduleResubscribe() {
	d := st.dev
	delay := st.bo.Next()
	st.mu.Lock()
	if st.closed || st.retryCancel != nil {
		st.mu.Unlock()
		return
	}
	st.retryCancel = d.sched.After(delay, func() {
		st.mu.Lock()
		st.retryCancel = nil
		st.mu.Unlock()
		d.mu.Lock()
		cli := d.client
		ok := d.connected && !d.closed && cli != nil
		d.mu.Unlock()
		if !ok {
			return // session down: reconnect will resubscribe every stream
		}
		st.mu.Lock()
		already := st.curCli == cli && st.cur != nil
		st.mu.Unlock()
		if already {
			return // a session-level resubscribe beat the retry to it
		}
		st.resubscribe(cli)
	})
	st.mu.Unlock()
}

// cancelRetryLocked stops any pending per-stream retry timer. Callers hold
// st.mu.
func (st *Stream) cancelRetryLocked() {
	if st.retryCancel != nil {
		st.retryCancel()
		st.retryCancel = nil
	}
}

// pump forwards one underlying client stream's batches into the persistent
// channels. It returns when that client stream ends; reconnection starts a
// new pump.
func (st *Stream) pump(cs *burst.ClientStream) {
	for batch := range cs.Events {
		for _, delta := range batch {
			switch delta.Type {
			case burst.DeltaPayload:
				sp := st.dev.cfg.Tracer.Start(delta.Trace, trace.HopApply, trace.HopFlush)
				sp.AnnotateInt("seq", int64(delta.Seq))
				st.mu.Lock()
				if sp.Active() {
					sp.Annotate("stream", st.req.Header[burst.HdrTraceStream])
				}
				if delta.Seq > st.seq {
					st.seq = delta.Seq
				}
				if !st.closed {
					st.dev.Updates.Inc()
					select {
					case st.Updates <- delta:
					default: // device is slow; best-effort drop (counted)
						st.dev.RenderDrops.Inc()
						sp.Drop("render-queue-full")
					}
				}
				st.mu.Unlock()
				sp.End()
			case burst.DeltaFlowStatus:
				st.dev.FlowEvents.Inc()
				if (delta.Flow == burst.FlowDegraded && overload.IsShedMarker(delta.FlowDetail)) ||
					(delta.Flow == burst.FlowRecovered && overload.IsRecoveredMarker(delta.FlowDetail)) {
					// An upstream hop dropped deltas: the gap is not
					// trustworthy. If the stored request carries a durable-log
					// cursor the gap is repairable from the edge — resubscribe
					// with the clamped cursor and let the serving BRASS replay
					// the suffix. Otherwise re-fetch via point query. The
					// episode's CLOSE triggers one too — deltas shed after the
					// onset recovery's snapshot are only visible now. The
					// routing check is sound because the BRASS rewrites the
					// cursor into the stored request during stream open,
					// BEFORE any live delivery can shed.
					if cs.Request().Header[burst.HdrCursor] != "" {
						st.triggerCursorResume()
					} else {
						st.triggerResync()
					}
				}
				st.pushFlow(delta.Flow)
			case burst.DeltaTermination:
				st.terminate()
				return
			}
		}
		// Keep the stored request in sync with rewrites (the BURST
		// client applies them to cs's copy).
		st.mu.Lock()
		st.req = cs.Request()
		st.mu.Unlock()
	}
	// Channel closed without termination: session loss. The device-level
	// reconnect will resubscribe us; nothing to do here.
}

// pushFlow delivers a flow code to the app, coalescing under pressure:
// a full buffer evicts the OLDEST code so the latest connectivity state
// always lands. Silently dropping the newest (the old behaviour) could
// lose a FlowRecovered behind a backlog of stale degraded notices,
// wedging the app in "degraded" forever. st.mu serializes producers, so
// after one eviction the retry always finds room.
func (st *Stream) pushFlow(code burst.FlowCode) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	for {
		select {
		case st.Flow <- code:
			return
		default:
		}
		select {
		case <-st.Flow:
			st.dev.FlowCoalesced.Inc()
		default:
			// The app drained a slot between the two selects; retry lands.
		}
	}
}

// SetResync registers the stream's shed-then-resync hooks. build renders
// the point-query expression from the last applied sequence number; apply
// consumes the query result (e.g. replacing the rendered view). When an
// upstream hop signals FlowDegraded with a shed marker, the device issues
// the query off the pump goroutine; concurrent triggers coalesce into one
// in-flight resync.
func (st *Stream) SetResync(build func(lastSeq uint64) string, apply func([]byte)) {
	st.mu.Lock()
	st.resyncBuild = build
	st.resyncApply = apply
	st.mu.Unlock()
}

// triggerResync schedules a shed-then-resync point query (no-op when no
// resync hooks are registered or the stream is closed). Triggers that
// arrive while a resync is in flight coalesce into ONE trailing re-run:
// the in-flight query's snapshot predates them, so skipping entirely could
// leave a permanent gap, while re-running once after it completes cannot.
func (st *Stream) triggerResync() {
	st.mu.Lock()
	if st.resyncBuild == nil || st.closed {
		st.mu.Unlock()
		return
	}
	if st.resyncPending {
		st.resyncAgain = true
		st.dev.ResyncCoalesced.Inc()
		st.mu.Unlock()
		return
	}
	st.resyncPending = true
	st.mu.Unlock()
	st.runResync()
}

// runResync issues one point query off the pump goroutine; resyncPending
// is held by the caller and released (or rolled into a trailing re-run)
// when the query completes.
func (st *Stream) runResync() {
	st.mu.Lock()
	build, apply := st.resyncBuild, st.resyncApply
	seq := st.seq
	if st.closed || build == nil {
		st.resyncPending = false
		st.resyncAgain = false
		st.mu.Unlock()
		return
	}
	st.mu.Unlock()
	d := st.dev
	d.sched.After(0, func() {
		out, err := d.was.PointQueryIn(d.cfg.Region, d.cfg.User, build(seq))
		st.mu.Lock()
		again := st.resyncAgain
		st.resyncAgain = false
		if !again {
			st.resyncPending = false
		}
		closed := st.closed
		st.mu.Unlock()
		if err == nil && !closed {
			d.Resyncs.Inc()
			if apply != nil {
				apply(out)
			}
		}
		if again {
			st.runResync()
		}
	})
}

// triggerCursorResume repairs a shed gap from the durable log: cancel the
// current client stream and resubscribe with the stored request, whose
// cursor (clamped to the applied seq by resubscribe) the serving BRASS
// answers with a gap-free catch-up batch. Triggers arriving while one
// resume is scheduled coalesce away entirely — the resubscribe replays
// everything after the clamped cursor, so there is nothing left for a
// trailing re-run to pick up.
func (st *Stream) triggerCursorResume() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	if st.cursorPending {
		st.dev.ResyncCoalesced.Inc()
		st.mu.Unlock()
		return
	}
	st.cursorPending = true
	st.mu.Unlock()
	d := st.dev
	d.sched.After(0, func() {
		st.mu.Lock()
		st.cursorPending = false
		closed := st.closed
		cur := st.cur
		st.mu.Unlock()
		if closed {
			return
		}
		d.mu.Lock()
		cli := d.client
		ok := d.connected && !d.closed && cli != nil
		d.mu.Unlock()
		if !ok {
			// Session down: the reconnect path resubscribes every stream
			// with its stored request, which carries the cursor anyway.
			return
		}
		if cur != nil {
			_ = cur.Cancel("cursor-resume")
		}
		d.CursorResumes.Inc()
		st.resubscribe(cli)
	})
}

// RetryBackoff exposes the stream's resubscribe backoff (attempt count,
// retry/saturation counters) for tests asserting post-failover pacing.
func (st *Stream) RetryBackoff() *faults.Backoff { return st.bo }

// LastSeq returns the highest payload sequence number received.
func (st *Stream) LastSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.seq
}

// Request returns the stream's current stored request, including any
// rewrites the serving BRASS has applied.
func (st *Stream) Request() burst.Subscribe {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cur != nil {
		return st.cur.Request()
	}
	return st.req
}

// Cancel ends the stream from the device side.
func (st *Stream) Cancel(reason string) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	cur := st.cur
	st.cancelRetryLocked()
	st.mu.Unlock()
	if cur != nil {
		_ = cur.Cancel(reason)
	}
	st.dev.dropStream(st)
	close(st.Updates)
	close(st.Flow)
}

// terminate handles a server-side termination delta.
func (st *Stream) terminate() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	st.cancelRetryLocked()
	st.mu.Unlock()
	st.dev.dropStream(st)
	close(st.Updates)
	close(st.Flow)
}

// shutdown closes channels on device teardown.
func (st *Stream) shutdown() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	st.cancelRetryLocked()
	st.mu.Unlock()
	close(st.Updates)
	close(st.Flow)
}

func (d *Device) dropStream(st *Stream) {
	d.mu.Lock()
	delete(d.streams, st)
	d.mu.Unlock()
}

// StartPresence begins the periodic ONLINE report the paper's ActiveStatus
// application expects from devices ("each device updates the client's
// status to ONLINE with the WAS every 30 seconds when online"). It returns
// a stop function. Reports cease automatically when the device is closed.
func (d *Device) StartPresence(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	var (
		mu      sync.Mutex
		stopped bool
		cancel  func()
	)
	var tick func()
	schedule := func() {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return
		}
		cancel = d.sched.After(interval, tick)
	}
	tick = func() {
		d.mu.Lock()
		closed := d.closed
		d.mu.Unlock()
		if closed {
			return
		}
		_, _ = d.Mutate("reportActive")
		schedule()
	}
	// First report immediately: coming online is itself a report.
	_, _ = d.Mutate("reportActive")
	schedule()
	return func() {
		mu.Lock()
		defer mu.Unlock()
		stopped = true
		if cancel != nil {
			cancel()
		}
	}
}
