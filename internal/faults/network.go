package faults

import (
	"io"
	"math/rand"
	"sync"
	"time"

	"bladerunner/internal/edge"
	"bladerunner/internal/metrics"
	"bladerunner/internal/sim"
)

// Direction selects which half of a link a directional fault applies to.
type Direction int

const (
	// ToTarget is the dialer→target half (device writes toward a POP).
	ToTarget Direction = iota
	// FromTarget is the target→dialer half (a POP's pushes to devices).
	FromTarget
)

// String names the direction.
func (d Direction) String() string {
	if d == ToTarget {
		return "to-target"
	}
	return "from-target"
}

// link is the mutable fault state of one target's links. All fields are
// guarded by FaultNetwork.mu.
type link struct {
	latency   sim.Dist
	dropProb  float64
	blackhole [2]bool
	// stall is non-nil while reads on this link are stalled; it is closed
	// to release the stalled readers.
	stall chan struct{}
	conns map[*faultConn]bool
}

// FaultNetwork wraps an edge.PipeNetwork, tracking every live connection so
// faults apply to *established* streams, not just new dials. It implements
// edge.Dialer; components built on PipeNetwork run unchanged on top of it.
//
// Faults are keyed by dial target, the network's addressable unit:
//
//   - SetLatency: per-write delay drawn from a seeded distribution.
//   - SetDropProb: each write may trigger a corrupt-free cut of its
//     connection (the byte stream is never corrupted; the transport dies,
//     exactly the mid-stream drops of Fig 10).
//   - SetBlackhole: writes in one direction are silently swallowed — an
//     asymmetric partition where one side still believes the link is up.
//   - Stall/Unstall: reads park until released, modelling a slow reader
//     that backpressures the sender.
//   - Cut/Heal: the target goes hard down — new dials fail AND every
//     established pipe is severed (via PipeNetwork.SetDown).
//
// The RNG is seeded: under a single-threaded sim.Engine the entire fault
// sequence is deterministic; under real goroutines the *schedule* (Plan)
// remains deterministic while per-write sampling follows the race winner.
type FaultNetwork struct {
	inner *edge.PipeNetwork
	sched sim.Scheduler

	mu    sync.Mutex
	rng   *rand.Rand
	links map[string]*link

	// Metrics: every injected fault is counted, so chaos runs can assert
	// the plane actually fired and experiments can report fault volume.
	InjectedCuts     metrics.Counter
	InjectedDrops    metrics.Counter
	BlackholedWrites metrics.Counter
	DelayedWrites    metrics.Counter
	StalledReads     metrics.Counter
}

// NewFaultNetwork wraps inner. sched drives latency sleeps and Plan
// timelines (nil = wall clock); seed drives all probabilistic faults.
func NewFaultNetwork(inner *edge.PipeNetwork, sched sim.Scheduler, seed int64) *FaultNetwork {
	if sched == nil {
		sched = sim.RealClock{}
	}
	return &FaultNetwork{
		inner: inner,
		sched: sched,
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[string]*link),
	}
}

// Inner returns the wrapped PipeNetwork (for registration helpers that
// need the concrete type).
func (n *FaultNetwork) Inner() *edge.PipeNetwork { return n.inner }

// Register makes target dialable through the fault plane: the server end
// of every accepted connection is wrapped so faults apply to both halves.
func (n *FaultNetwork) Register(target string, accept func(io.ReadWriteCloser)) {
	n.inner.Register(target, func(rwc io.ReadWriteCloser) {
		accept(n.track(target, rwc, FromTarget))
	})
}

// Unregister removes a target.
func (n *FaultNetwork) Unregister(target string) { n.inner.Unregister(target) }

// Dial implements edge.Dialer; the client end is wrapped in the fault
// plane.
func (n *FaultNetwork) Dial(target string) (io.ReadWriteCloser, error) {
	rwc, err := n.inner.Dial(target)
	if err != nil {
		return nil, err
	}
	return n.track(target, rwc, ToTarget), nil
}

// DialCount reports successful dials to target (delegates to the inner
// network, which counts them).
func (n *FaultNetwork) DialCount(target string) int { return n.inner.DialCount(target) }

// linkLocked returns target's fault state, creating it on first use.
func (n *FaultNetwork) linkLocked(target string) *link {
	l := n.links[target]
	if l == nil {
		l = &link{conns: make(map[*faultConn]bool)}
		n.links[target] = l
	}
	return l
}

func (n *FaultNetwork) track(target string, rwc io.ReadWriteCloser, dir Direction) *faultConn {
	c := &faultConn{net: n, target: target, dir: dir, inner: rwc, done: make(chan struct{})}
	n.mu.Lock()
	n.linkLocked(target).conns[c] = true
	n.mu.Unlock()
	return c
}

// OpenConns returns the number of live tracked connections to target
// (both ends of each pipe count separately).
func (n *FaultNetwork) OpenConns(target string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l := n.links[target]; l != nil {
		return len(l.conns)
	}
	return 0
}

// SetLatency applies a per-write latency distribution to target's links
// (nil clears it). Latency sleeps block the writer via sim.Sleep, so under
// a virtual Scheduler the writer must not be the engine goroutine.
func (n *FaultNetwork) SetLatency(target string, d sim.Dist) {
	n.mu.Lock()
	n.linkLocked(target).latency = d
	n.mu.Unlock()
}

// SetDropProb makes each write to/from target cut its connection with
// probability p — a corrupt-free mid-stream failure.
func (n *FaultNetwork) SetDropProb(target string, p float64) {
	n.mu.Lock()
	n.linkLocked(target).dropProb = p
	n.mu.Unlock()
}

// SetBlackhole silently swallows writes in one direction of target's
// links: an asymmetric partition. The writer sees success; nothing
// arrives.
func (n *FaultNetwork) SetBlackhole(target string, dir Direction, on bool) {
	n.mu.Lock()
	n.linkLocked(target).blackhole[dir] = on
	n.mu.Unlock()
}

// Stall parks all reads on target's links until Unstall — a slow reader
// whose backpressure propagates to senders.
func (n *FaultNetwork) Stall(target string) {
	n.mu.Lock()
	l := n.linkLocked(target)
	if l.stall == nil {
		l.stall = make(chan struct{})
	}
	n.mu.Unlock()
}

// Unstall releases readers parked by Stall.
func (n *FaultNetwork) Unstall(target string) {
	n.mu.Lock()
	l := n.linkLocked(target)
	ch := l.stall
	l.stall = nil
	n.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// Cut takes target hard down: new dials fail and every established pipe is
// severed (both the inner pipes and the fault-plane wrappers, so stalled
// readers wake too).
func (n *FaultNetwork) Cut(target string) {
	n.InjectedCuts.Inc()
	n.inner.SetDown(target, true)
	n.mu.Lock()
	var conns []*faultConn
	if l := n.links[target]; l != nil {
		for c := range l.conns {
			conns = append(conns, c)
		}
	}
	n.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Heal makes target dialable again. Established connections severed by Cut
// stay dead: recovery is the client's job (resubscribe with the stored
// request), which is exactly what the chaos suite exercises.
func (n *FaultNetwork) Heal(target string) {
	n.inner.SetDown(target, false)
}

// CutGroup takes every target hard down as ONE event: the inner network's
// down flags flip under a single lock acquisition (no half-cut window —
// see edge.PipeNetwork.SetDownGroup), then the severed pipes and the
// fault-plane wrappers are closed. One injected cut is counted per target
// so fault-volume accounting matches the per-target Cut path.
func (n *FaultNetwork) CutGroup(targets ...string) {
	n.InjectedCuts.Add(int64(len(targets)))
	n.inner.SetDownGroup(true, targets...)
	n.mu.Lock()
	var conns []*faultConn
	for _, target := range targets {
		if l := n.links[target]; l != nil {
			for c := range l.conns {
				conns = append(conns, c)
			}
		}
	}
	n.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// HealGroup makes every target dialable again atomically — the heal is one
// event, mirroring CutGroup.
func (n *FaultNetwork) HealGroup(targets ...string) {
	n.inner.SetDownGroup(false, targets...)
}

// ClearFaults removes latency, drop, blackhole, and stall state from
// target (it does not Heal a Cut).
func (n *FaultNetwork) ClearFaults(target string) {
	n.mu.Lock()
	l := n.linkLocked(target)
	l.latency = nil
	l.dropProb = 0
	l.blackhole = [2]bool{}
	ch := l.stall
	l.stall = nil
	n.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

var _ edge.Dialer = (*FaultNetwork)(nil)

// faultConn is one tracked half of a connection, applying its target's
// current fault state to every read and write.
type faultConn struct {
	net    *FaultNetwork
	target string
	dir    Direction
	inner  io.ReadWriteCloser

	mu   sync.Mutex
	dead bool
	done chan struct{}
}

func (c *faultConn) Read(p []byte) (int, error) {
	for {
		c.mu.Lock()
		dead := c.dead
		c.mu.Unlock()
		if dead {
			return 0, io.ErrClosedPipe
		}
		c.net.mu.Lock()
		var stall chan struct{}
		if l := c.net.links[c.target]; l != nil {
			stall = l.stall
		}
		c.net.mu.Unlock()
		if stall == nil {
			break
		}
		c.net.StalledReads.Inc()
		select {
		case <-stall:
		case <-c.done:
			return 0, io.ErrClosedPipe
		}
	}
	return c.inner.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, io.ErrClosedPipe
	}
	var (
		delay time.Duration
		drop  bool
		hole  bool
	)
	c.net.mu.Lock()
	if l := c.net.links[c.target]; l != nil {
		if l.latency != nil {
			delay = l.latency.Sample(c.net.rng)
		}
		if l.dropProb > 0 && c.net.rng.Float64() < l.dropProb {
			drop = true
		}
		hole = l.blackhole[c.dir]
	}
	c.net.mu.Unlock()
	if drop {
		// Corrupt-free cut: the connection dies cleanly mid-stream; no
		// partial bytes ever corrupt the peer's framing.
		c.net.InjectedDrops.Inc()
		_ = c.Close()
		return 0, io.ErrClosedPipe
	}
	if delay > 0 {
		c.net.DelayedWrites.Inc()
		sim.Sleep(c.net.sched, delay)
	}
	if hole {
		c.net.BlackholedWrites.Inc()
		return len(p), nil
	}
	return c.inner.Write(p)
}

func (c *faultConn) Close() error {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return nil
	}
	c.dead = true
	c.mu.Unlock()
	close(c.done)
	c.net.mu.Lock()
	if l := c.net.links[c.target]; l != nil {
		delete(l.conns, c)
	}
	c.net.mu.Unlock()
	return c.inner.Close()
}
