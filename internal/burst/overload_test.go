package burst

import (
	"fmt"
	"testing"
)

// A bounded pending buffer sheds its OLDEST payload deltas when Queue
// exceeds the limit; control deltas keep their place (and may exceed the
// bound), and every shed delta is observed by the onShed hook.
func TestServerStreamPendingLimitShedsOldestPayload(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, err := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/t"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	ss := srv.stream(0)

	var shed []Delta
	ss.SetPendingLimit(3, func(d Delta) { shed = append(shed, d) })

	if err := ss.Queue(
		PayloadDelta(1, []byte("a")),
		PayloadDelta(2, []byte("b")),
	); err != nil {
		t.Fatal(err)
	}
	if err := ss.QueueRewriteHeaderField("k", "v"); err != nil {
		t.Fatal(err)
	}
	// Over the limit: the two oldest payloads shed; the rewrite (control)
	// survives even though it is older than the incoming payloads.
	if err := ss.Queue(
		PayloadDelta(3, []byte("c")),
		PayloadDelta(4, []byte("d")),
	); err != nil {
		t.Fatal(err)
	}
	if len(shed) != 2 || shed[0].Seq != 1 || shed[1].Seq != 2 {
		t.Fatalf("shed = %+v, want seqs 1 and 2", shed)
	}
	deltas, err := ss.Flush()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range deltas {
		if d.Type == DeltaPayload {
			got = append(got, fmt.Sprintf("p%d", d.Seq))
		} else {
			got = append(got, d.Type.String())
		}
	}
	if len(deltas) != 3 || deltas[0].Type != DeltaRewriteRequest ||
		deltas[1].Seq != 3 || deltas[2].Seq != 4 {
		t.Fatalf("flushed %v, want [rewrite p3 p4]", got)
	}
	batch := recvBatch(t, st)
	if len(batch) != 2 || batch[0].Seq != 3 || batch[1].Seq != 4 {
		t.Fatalf("client batch = %+v", batch)
	}
}

// Control-only overflow: when the buffer holds nothing but control
// deltas, the bound is exceeded rather than dropping any of them.
func TestServerStreamPendingLimitNeverShedsControl(t *testing.T) {
	cli, _, srv := newClientServer(t)
	if _, err := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/t"}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	ss := srv.stream(0)
	sheds := 0
	ss.SetPendingLimit(2, func(Delta) { sheds++ })
	for i := 0; i < 5; i++ {
		if err := ss.QueueRewriteHeaderField(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if sheds != 0 {
		t.Fatalf("shed %d control deltas", sheds)
	}
	deltas, err := ss.Flush()
	if err != nil || len(deltas) != 5 {
		t.Fatalf("Flush = %d deltas, %v; want all 5 control", len(deltas), err)
	}
}

// A stalled client buffer evicts the oldest batch but salvages its
// control deltas: payloads shed (counted), flow/rewrite/termination
// always reach the application in order.
func TestClientBufferEvictionSalvagesControl(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, err := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/t"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	ss := srv.stream(0)

	// Nobody reads st.Events: fill the buffer, then push one more batch
	// carrying a control delta, then keep pushing payloads so the control
	// batch itself gets evicted — its flow delta must be salvaged.
	total := eventBuffer + 1
	for i := 0; i < total; i++ {
		if err := ss.SendBatch(PayloadDelta(uint64(i+1), []byte("x"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.SendBatch(
		PayloadDelta(uint64(total+1), []byte("y")),
		FlowStatusDelta(FlowDegraded, "pressure"),
	); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < eventBuffer; i++ {
		if err := ss.SendBatch(PayloadDelta(uint64(total+2+i), []byte("z"))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "drops counted", func() bool { return cli.Dropped.Value() > 0 })
	waitFor(t, "control salvaged", func() bool { return cli.CtlSalvaged.Value() >= 1 })

	// Drain everything: the degraded notice must still be in there.
	sawFlow := false
	for done := false; !done; {
		select {
		case batch := <-st.Events:
			for _, d := range batch {
				if d.Type == DeltaFlowStatus && d.Flow == FlowDegraded {
					sawFlow = true
				}
			}
		default:
			done = true
		}
	}
	if !sawFlow {
		t.Fatal("FlowDegraded was lost under buffer pressure")
	}
}
