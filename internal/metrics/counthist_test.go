package metrics

import "testing"

func TestCountHistogramBasics(t *testing.T) {
	h := NewCountHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []int64{4, 2, 8, 2} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Sum() != 16 {
		t.Fatalf("Sum = %d, want 16", h.Sum())
	}
	if h.Mean() != 4 {
		t.Fatalf("Mean = %v, want 4", h.Mean())
	}
	if h.Min() != 2 || h.Max() != 8 {
		t.Fatalf("Min/Max = %d/%d, want 2/8", h.Min(), h.Max())
	}
}

func TestCountHistogramPercentiles(t *testing.T) {
	h := NewCountHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if p := h.Percentile(0); p != 1 {
		t.Fatalf("p0 = %d, want 1", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Fatalf("p100 = %d, want 100", p)
	}
	if p := h.Percentile(50); p < 49 || p > 52 {
		t.Fatalf("p50 = %d, want ~50", p)
	}
	snap := h.Snapshot()
	if snap.Count != 100 || snap.Mean != 50.5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestCountHistogramReservoirBounded(t *testing.T) {
	h := NewCountHistogramSize(8)
	for i := int64(0); i < 1000; i++ {
		h.Observe(i % 10)
	}
	if len(h.reservoir) != 8 {
		t.Fatalf("reservoir len = %d, want 8", len(h.reservoir))
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if p := h.Percentile(50); p < 0 || p > 9 {
		t.Fatalf("p50 = %d outside observed range", p)
	}
}
