// End-to-end smoke of the multi-process deployment: build the real
// binary, boot a cluster of separate OS processes on loopback, run the
// quickstart flow over real TCP, SIGKILL a POP mid-stream, and assert
// the launcher restarts it on the same port and the reconnecting device
// resumes gap-free from its durable-log cursor — zero point-query
// resyncs, zero backend reads.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/ctrl"
	"bladerunner/internal/device"
	"bladerunner/internal/edge"
	"bladerunner/internal/faults"
	"bladerunner/internal/socialgraph"
)

// childInfo is one parsed CHILD line from the launcher.
type childInfo struct {
	role  string
	pid   int
	ctrl  string
	burst string
}

// launchCluster builds brnode, boots -role all -procs N, and returns the
// children by role (pops in announcement order) once CLUSTER-READY
// arrives. Restarted children update the pid in place.
type liveCluster struct {
	cmd *exec.Cmd

	mu       sync.Mutex
	byRole   map[string][]*childInfo
	restarts map[string]int
	ready    chan struct{}
}

func launchCluster(t *testing.T, procs int) *liveCluster {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "brnode")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build brnode: %v", err)
	}

	cmd := exec.Command(bin, "-role", "all", "-procs", strconv.Itoa(procs), "-users", "100")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start launcher: %v", err)
	}
	lc := &liveCluster{
		cmd:      cmd,
		byRole:   make(map[string][]*childInfo),
		restarts: make(map[string]int),
		ready:    make(chan struct{}),
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "CHILD "):
				ci := &childInfo{}
				for _, tok := range strings.Fields(line)[1:] {
					k, v, _ := strings.Cut(tok, "=")
					switch k {
					case "role":
						ci.role = v
					case "pid":
						ci.pid, _ = strconv.Atoi(v)
					case "ctrl":
						ci.ctrl = v
					case "burst":
						ci.burst = v
					}
				}
				lc.mu.Lock()
				// A restart re-announces on the same addresses: update the
				// matching entry's pid instead of growing the list.
				replaced := false
				for _, prev := range lc.byRole[ci.role] {
					if prev.ctrl == ci.ctrl {
						prev.pid = ci.pid
						lc.restarts[ci.role]++
						replaced = true
						break
					}
				}
				if !replaced {
					lc.byRole[ci.role] = append(lc.byRole[ci.role], ci)
				}
				lc.mu.Unlock()
			case line == "CLUSTER-READY":
				close(lc.ready)
			}
		}
	}()

	select {
	case <-lc.ready:
	case <-time.After(90 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("cluster never became ready")
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	})
	return lc
}

func (lc *liveCluster) child(t *testing.T, role string, idx int) *childInfo {
	t.Helper()
	lc.mu.Lock()
	defer lc.mu.Unlock()
	cs := lc.byRole[role]
	if idx >= len(cs) {
		t.Fatalf("no %s child #%d (have %d)", role, idx, len(cs))
	}
	cp := *cs[idx]
	return &cp
}

func (lc *liveCluster) restartCount(role string) int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.restarts[role]
}

// countingBackend wraps the ctrl WAS client and counts point queries so
// the test can prove shed/reconnect repair never read the backend.
type countingBackend struct {
	*ctrl.WASClient
	pointQueries atomic.Int64
}

func (b *countingBackend) PointQueryIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error) {
	b.pointQueries.Add(1)
	return b.WASClient.PointQueryIn(region, viewer, expr)
}

func dialCtrlT(t *testing.T, name, addr string) *ctrl.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s at %s: %v", name, addr, err)
	}
	conn := ctrl.NewConn(name, c, nil).Start()
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// seqTracker collects delivered mailbox sequence numbers from a stream.
type seqTracker struct {
	mu   sync.Mutex
	seqs map[uint64]bool
	done sync.WaitGroup
}

func trackStream(st *device.Stream) *seqTracker {
	tr := &seqTracker{seqs: make(map[uint64]bool)}
	tr.done.Add(2)
	go func() {
		defer tr.done.Done()
		for d := range st.Updates {
			var m apps.MessagePayload
			if json.Unmarshal(d.Payload, &m) == nil {
				tr.mu.Lock()
				tr.seqs[m.Seq] = true
				tr.mu.Unlock()
			}
		}
	}()
	go func() {
		defer tr.done.Done()
		for range st.Flow {
		}
	}()
	return tr
}

func (tr *seqTracker) hasAll(n uint64) bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for s := uint64(1); s <= n; s++ {
		if !tr.seqs[s] {
			return false
		}
	}
	return true
}

func (tr *seqTracker) missing(n uint64) []uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []uint64
	for s := uint64(1); s <= n && len(out) < 10; s++ {
		if !tr.seqs[s] {
			out = append(out, s)
		}
	}
	return out
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestE2EMultiProcessFailover is the tentpole smoke: quickstart over a
// real 5-process cluster (pylon, was, brass, 2 pops), then a POP
// SIGKILL + supervised restart with gap-free durlog-cursor resume.
func TestE2EMultiProcessFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e: skipped in -short")
	}
	lc := launchCluster(t, 5) // pylon + was + brass + 2 pops

	wasInfo := lc.child(t, "was", 0)
	pylonInfo := lc.child(t, "pylon", 0)
	pop0 := lc.child(t, "pop", 0)
	pop1 := lc.child(t, "pop", 1)

	backend := &countingBackend{WASClient: ctrl.NewWASClient(dialCtrlT(t, "test->was", wasInfo.ctrl))}
	var pylonCli *ctrl.PylonClient
	pconn, err := net.Dial("tcp", pylonInfo.ctrl)
	if err != nil {
		t.Fatal(err)
	}
	pcc := ctrl.NewConn("test->pylon", pconn, nil)
	pylonCli = ctrl.NewPylonClient(pcc)
	pcc.Start()
	t.Cleanup(func() { _ = pcc.Close() })

	// Each viewer device pins one POP, so killing pop-0 severs exactly
	// one of them while the other keeps the mailbox topic (and its
	// durable log) hot on the BRASS host — the second-device-per-user
	// shape: the phone stays online while the laptop's POP dies.
	tnet := edge.NewTCPNetwork()
	defer tnet.Close()
	tnet.SetAddr("pop-0", pop0.burst)
	tnet.SetAddr("pop-1", pop1.burst)

	const (
		authorUID = socialgraph.UserID(90)
		viewerUID = socialgraph.UserID(10)
	)
	author := device.New(device.Config{User: authorUID}, tnet, backend, nil)
	defer author.Close()
	newViewer := func(pop string) *device.Device {
		return device.New(device.Config{
			User:    viewerUID,
			POPs:    []string{pop},
			Backoff: faults.BackoffPolicy{Base: 25 * time.Millisecond, Max: 400 * time.Millisecond},
		}, tnet, backend, nil)
	}
	viewerA := newViewer("pop-0") // will lose its POP
	defer viewerA.Close()
	viewerB := newViewer("pop-1") // keeps the topic alive during the kill
	defer viewerB.Close()

	for _, d := range []*device.Device{viewerA, viewerB} {
		if err := d.Connect(); err != nil {
			t.Fatal(err)
		}
	}
	stA, err := viewerA.Subscribe(apps.AppMessenger, "messenger", nil)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := viewerB.Subscribe(apps.AppMessenger, "messenger", nil)
	if err != nil {
		t.Fatal(err)
	}
	trA, trB := trackStream(stA), trackStream(stB)

	// Quickstart: create the thread, wait for the subscription to reach
	// Pylon (over two process hops), then message through the WAS.
	out, err := author.Mutate(fmt.Sprintf(`createThread(members: "%d,%d")`, authorUID, viewerUID))
	if err != nil {
		t.Fatalf("createThread: %v", err)
	}
	var thread uint64
	if err := json.Unmarshal(out, &thread); err != nil {
		t.Fatalf("thread id: %v", err)
	}
	if !pylonCli.WaitForSubscriber(apps.MailboxTopic(viewerUID), 10*time.Second) {
		t.Fatal("mailbox topic never gained a Pylon subscriber")
	}

	var sent uint64
	send := func(text string) {
		t.Helper()
		if _, err := author.Mutate(fmt.Sprintf(`sendMessage(threadID: %d, text: "%s")`, thread, text)); err != nil {
			t.Fatalf("sendMessage: %v", err)
		}
		sent++
	}

	send("hello edge")
	waitFor(t, "baseline delivery to both devices", 10*time.Second, func() bool {
		return trA.hasAll(sent) && trB.hasAll(sent)
	})

	// Failover: SIGKILL viewer A's POP. The launcher must restart it on
	// the same port; until then, messages keep flowing to viewer B and
	// into the BRASS durable log.
	if err := syscall.Kill(pop0.pid, syscall.SIGKILL); err != nil {
		t.Fatalf("kill pop-0 (pid %d): %v", pop0.pid, err)
	}
	waitFor(t, "viewer A to observe the dead POP", 10*time.Second, func() bool {
		return !viewerA.Connected()
	})
	for i := 0; i < 20; i++ {
		send(fmt.Sprintf("during-outage-%d", i))
	}
	waitFor(t, "viewer B delivery during the outage", 15*time.Second, func() bool {
		return trB.hasAll(sent)
	})
	waitFor(t, "launcher restart of pop-0", 30*time.Second, func() bool {
		return lc.restartCount("pop") >= 1
	})
	waitFor(t, "viewer A reconnect through the restarted POP", 30*time.Second, func() bool {
		return viewerA.Connected() && viewerA.Streams() == 1
	})

	// Gap-free resume: everything published during the outage must reach
	// viewer A purely via the durable-log cursor replay.
	send("after failover")
	deadline := time.Now().Add(30 * time.Second)
	for !trA.hasAll(sent) {
		if time.Now().After(deadline) {
			t.Fatalf("viewer A never converged: %d sent, missing %v, resubscribes=%d resyncs=%d",
				sent, trA.missing(sent), viewerA.Resubscribes.Value(), viewerA.Resyncs.Value())
		}
		time.Sleep(50 * time.Millisecond)
	}

	if got := viewerA.Resubscribes.Value(); got == 0 {
		t.Error("viewer A resubscribed zero times; the failover path never engaged")
	}
	if got := viewerA.Resyncs.Value(); got != 0 {
		t.Errorf("viewer A ran %d legacy point resyncs; the outage gap must close via the log cursor", got)
	}
	if got := backend.pointQueries.Load(); got != 0 {
		t.Errorf("devices issued %d point queries; durlog resume must not read the backend", got)
	}
	if got := viewerA.PeerCloses.Value(); got == 0 {
		t.Log("note: POP kill surfaced as a hard error, not a clean close (expected for SIGKILL)")
	}

	// Clean teardown: close devices first so their streams drain.
	viewerA.Close()
	viewerB.Close()
	trA.done.Wait()
	trB.done.Wait()
	t.Logf("sent=%d resubscribes=%d cursorResumes=%d popRestarts=%d",
		sent, viewerA.Resubscribes.Value(), viewerA.CursorResumes.Value(), lc.restartCount("pop"))
}
