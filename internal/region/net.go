package region

import (
	"fmt"
	"io"
	"sync"

	"bladerunner/internal/edge"
	"bladerunner/internal/metrics"
	"bladerunner/internal/sim"
)

// Gate applies the region topology to the dial plane: every dial is
// checked against the current link state, cross-region connections pay the
// link's sampled per-write latency, and established cross-region
// connections are tracked so a partition severs them — a cut link kills
// the sessions already running over it, exactly like SetDown does for a
// dead host.
type Gate struct {
	topo  *Topology
	sched sim.Scheduler

	mu       sync.Mutex
	regionOf map[string]string           // target → region
	conns    map[Link]map[*gateConn]bool // live cross-region conns by link

	// RefusedDials counts dials rejected because the link was down.
	RefusedDials metrics.Counter
	// Severed counts established connections killed by a link/region cut.
	Severed metrics.Counter
}

// NewGate returns a Gate over topo. sched drives the latency model; nil
// means the wall clock.
func NewGate(topo *Topology, sched sim.Scheduler) *Gate {
	if sched == nil {
		sched = sim.RealClock{}
	}
	return &Gate{
		topo:     topo,
		sched:    sched,
		regionOf: make(map[string]string),
		conns:    make(map[Link]map[*gateConn]bool),
	}
}

// RegisterTarget records which region a dialable target lives in. Targets
// never registered are treated as living in the dialer's own region (the
// gate stays out of the way).
func (g *Gate) RegisterTarget(target, region string) {
	g.mu.Lock()
	g.regionOf[target] = region
	g.mu.Unlock()
}

// RegionOf returns the registered region for target ("" if unknown).
func (g *Gate) RegionOf(target string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.regionOf[target]
}

// TargetsIn returns the registered targets homed in region.
func (g *Gate) TargetsIn(region string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	for t, r := range g.regionOf {
		if r == region {
			out = append(out, t)
		}
	}
	return out
}

// DialerFor returns a Dialer that dials through inner on behalf of a
// caller in region src. Intra-region dials pass through untouched;
// cross-region dials are refused while the link is down and otherwise pay
// the link's sampled latency on every write.
func (g *Gate) DialerFor(src string, inner edge.Dialer) edge.Dialer {
	return &gatedDialer{g: g, src: src, inner: inner}
}

type gatedDialer struct {
	g     *Gate
	src   string
	inner edge.Dialer
}

// Dial implements edge.Dialer.
func (d *gatedDialer) Dial(target string) (io.ReadWriteCloser, error) {
	g := d.g
	g.mu.Lock()
	dst, known := g.regionOf[target]
	g.mu.Unlock()
	if !known || dst == d.src {
		return d.inner.Dial(target)
	}
	if !g.topo.LinkUp(d.src, dst) {
		g.RefusedDials.Inc()
		return nil, fmt.Errorf("region: link %s→%s down dialing %q", d.src, dst, target)
	}
	rwc, err := d.inner.Dial(target)
	if err != nil {
		return nil, err
	}
	gc := &gateConn{g: g, link: Link{d.src, dst}, inner: rwc}
	g.mu.Lock()
	// Re-check under the lock: a cut between LinkUp and registration must
	// not leave this connection alive across a partition.
	if !g.topo.LinkUp(d.src, dst) {
		g.mu.Unlock()
		_ = rwc.Close()
		g.RefusedDials.Inc()
		return nil, fmt.Errorf("region: link %s→%s down dialing %q", d.src, dst, target)
	}
	set := g.conns[gc.link]
	if set == nil {
		set = make(map[*gateConn]bool)
		g.conns[gc.link] = set
	}
	set[gc] = true
	g.mu.Unlock()
	return gc, nil
}

// gateConn is a cross-region connection: writes pay the link's sampled
// one-way latency (including any brownout inflation at write time), and a
// partition severs it.
type gateConn struct {
	g     *Gate
	link  Link
	inner io.ReadWriteCloser

	mu   sync.Mutex
	dead bool
}

// Read passes through until severed.
func (c *gateConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, io.ErrClosedPipe
	}
	return c.inner.Read(p)
}

// Write sleeps the link's current sampled latency, then forwards — unless
// the link was cut while sleeping.
func (c *gateConn) Write(p []byte) (int, error) {
	if d := c.g.topo.SampleLatency(c.link.Src, c.link.Dst); d > 0 {
		sim.Sleep(c.g.sched, d)
	}
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, io.ErrClosedPipe
	}
	return c.inner.Write(p)
}

// Close unregisters and closes the transport.
func (c *gateConn) Close() error {
	c.g.mu.Lock()
	delete(c.g.conns[c.link], c)
	c.g.mu.Unlock()
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	return c.inner.Close()
}

// sever kills the connection from the gate side (link cut).
func (c *gateConn) sever() {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	_ = c.inner.Close()
}

// SeverLink kills every established connection crossing src→dst (in that
// direction). Call after Topology.SetLinkDown so new dials are already
// refused when the old sessions die.
func (g *Gate) SeverLink(src, dst string) {
	g.severLinks(Link{src, dst})
}

// SeverRegion kills every established cross-region connection into or out
// of region r.
func (g *Gate) SeverRegion(r string) {
	g.mu.Lock()
	var links []Link
	for l := range g.conns {
		if l.Src == r || l.Dst == r {
			links = append(links, l)
		}
	}
	g.mu.Unlock()
	g.severLinks(links...)
}

func (g *Gate) severLinks(links ...Link) {
	g.mu.Lock()
	var victims []*gateConn
	for _, l := range links {
		for gc := range g.conns[l] {
			victims = append(victims, gc)
		}
		delete(g.conns, l)
	}
	g.mu.Unlock()
	for _, gc := range victims {
		g.Severed.Inc()
		gc.sever()
	}
}
