// Package overload is Bladerunner's overload-control plane: the shared
// building blocks every hop uses to shed work explicitly instead of
// queueing unboundedly (paper §4: delivery is best-effort under overload,
// and the system "drops messages intelligently" while flow_status deltas
// tell every path participant what happened).
//
// Two primitives cover the pipeline:
//
//   - Queue: a bounded work queue with an explicit shed policy. Data items
//     (payload deltas, Pylon events) shed oldest-first when the queue is
//     full — a live view wants the freshest update, not the oldest — while
//     control items (flow_status, rewrite_request, stream lifecycle) are
//     NEVER dropped: losing a FlowRecovered or a rewrite would wedge the
//     client's view of the stream permanently, which is exactly the class
//     of bug this package exists to remove.
//   - TokenBucket / Admission: a token-bucket admission controller used at
//     Pylon publish and BRASS delivery. Its state round-trips through a
//     stream header (like brass.RateLimiter) so it survives BRASS failover
//     rewrites, and restoring is clamped to "now" so a skewed or corrupt
//     header from a failed host can never stall a stream into the future.
//
// Everything is stdlib-only and sim.Clock-driven: the same code runs under
// the wall clock and under the deterministic experiment harness.
package overload

import (
	"strconv"
	"time"
)

// Class labels a queued item's shed class.
type Class uint8

const (
	// Data items may be shed under overload (oldest first).
	Data Class = iota
	// Control items are never shed: flow_status, rewrite_request,
	// termination, and stream lifecycle work must always be delivered.
	Control
)

func (c Class) String() string {
	if c == Control {
		return "control"
	}
	return "data"
}

// ShedMarkerPrefix prefixes the FlowDetail of every FlowDegraded emitted
// because a hop shed data deltas. Devices use it to distinguish "the path
// is degraded, wait" from "deltas were dropped, resynchronize via a WAS
// point query" (shed-then-resync).
const ShedMarkerPrefix = "shed:"

// RecoveredMarkerPrefix prefixes the FlowDetail of the matching
// FlowRecovered once the hop leaves shedding.
const RecoveredMarkerPrefix = "shed-recovered:"

// IsShedMarker reports whether a flow_status detail string marks a shed
// episode (as opposed to a transport failure).
func IsShedMarker(detail string) bool {
	return len(detail) >= len(ShedMarkerPrefix) && detail[:len(ShedMarkerPrefix)] == ShedMarkerPrefix
}

// IsRecoveredMarker reports whether a flow_status detail string marks the
// end of a shed episode. Devices resync on this too: deltas shed after the
// onset resync's snapshot are only recoverable once the episode closes.
func IsRecoveredMarker(detail string) bool {
	return len(detail) >= len(RecoveredMarkerPrefix) && detail[:len(RecoveredMarkerPrefix)] == RecoveredMarkerPrefix
}

// TokenBucket is a loop-owned (unsynchronized) token bucket: Rate tokens
// per second refill up to Burst. The zero value with Rate <= 0 admits
// everything. Use Admission for the concurrent form.
type TokenBucket struct {
	// Rate is the refill rate in tokens per second.
	Rate float64
	// Burst caps accumulated tokens. Values below 1 are treated as 1 so a
	// configured bucket can always admit something.
	Burst float64

	tokens float64
	last   time.Time
}

// burstCap returns the effective bucket capacity.
func (b *TokenBucket) burstCap() float64 {
	if b.Burst < 1 {
		return 1
	}
	return b.Burst
}

// refill advances the bucket to now. A zero last (fresh bucket) fills to
// capacity. A non-monotonic now — the clock retreated, e.g. after state
// was restored from a header written under a skewed clock — beyond one
// full refill interval resets last to now instead of stalling: tokens
// already accumulated are kept, future refills run from the earlier time.
func (b *TokenBucket) refill(now time.Time) {
	cap := b.burstCap()
	if b.last.IsZero() {
		b.tokens = cap
		b.last = now
		return
	}
	el := now.Sub(b.last)
	if el < 0 {
		// Tolerate clock retreat: never let a future-dated `last` freeze
		// the bucket. Small retreats (within one token of refill) keep the
		// old anchor; larger ones re-anchor at now.
		if b.Rate <= 0 || float64(-el)/float64(time.Second)*b.Rate > 1 {
			b.last = now
		}
		return
	}
	b.tokens += float64(el) / float64(time.Second) * b.Rate
	if b.tokens > cap {
		b.tokens = cap
	}
	b.last = now
}

// Allow consumes one token at time now, reporting whether the caller may
// proceed. Rate <= 0 disables the bucket (always allowed).
func (b *TokenBucket) Allow(now time.Time) bool {
	if b.Rate <= 0 {
		return true
	}
	b.refill(now)
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Tokens returns the level the bucket would hold at time now, without
// consuming anything.
func (b *TokenBucket) Tokens(now time.Time) float64 {
	if b.Rate <= 0 {
		return b.burstCap()
	}
	b.refill(now)
	return b.tokens
}

// HeaderState encodes the bucket's admission state for persistence in a
// stream header: "<tokens-milli>@<last-unix-nano>".
func (b *TokenBucket) HeaderState() string {
	return strconv.FormatInt(int64(b.tokens*1000), 10) + "@" +
		strconv.FormatInt(b.last.UnixNano(), 10)
}

// RestoreHeaderState loads state written by HeaderState, clamping it to
// now: a `last` in the future (skewed or corrupt header from a failed
// host) is pulled back to now, and the token level is clamped to
// [0, Burst]. A malformed string leaves the bucket untouched.
func (b *TokenBucket) RestoreHeaderState(s string, now time.Time) {
	if s == "" {
		return
	}
	at := -1
	for i := 0; i < len(s); i++ {
		if s[i] == '@' {
			at = i
			break
		}
	}
	if at < 0 {
		return
	}
	milli, err1 := strconv.ParseInt(s[:at], 10, 64)
	ns, err2 := strconv.ParseInt(s[at+1:], 10, 64)
	if err1 != nil || err2 != nil || ns <= 0 {
		return
	}
	last := time.Unix(0, ns)
	if last.After(now) {
		last = now
	}
	tokens := float64(milli) / 1000
	if tokens < 0 {
		tokens = 0
	}
	if cap := b.burstCap(); tokens > cap {
		tokens = cap
	}
	b.tokens = tokens
	b.last = last
}
