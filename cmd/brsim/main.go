// Command brsim boots a complete in-process Bladerunner deployment —
// social graph, TAO, Pylon (with its replicated subscription KV), WAS,
// BRASS hosts across regions, reverse proxies, and POPs — then drives a
// live workload through it and reports what happened.
//
// Usage:
//
//	brsim -viewers 50 -comments 200 -duration 3s
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/device"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
)

func main() {
	viewers := flag.Int("viewers", 30, "number of viewer devices")
	comments := flag.Int("comments", 150, "number of comments to post")
	videoID := flag.Uint64("video", 7, "live video id")
	duration := flag.Duration("duration", 3*time.Second, "how long to run after posting")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Graph.Users = *viewers + 200
	cfg.Graph.Seed = *seed
	cluster, err := core.NewCluster(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Scale LVC timers so the demo is responsive.
	cluster.Apps.LVC.RateLimit = 200 * time.Millisecond
	cluster.Apps.LVC.RankBeforePublish = false

	fmt.Printf("cluster: %d BRASS hosts, %d proxies, %d POPs, %d users\n",
		len(cluster.Hosts), len(cluster.Proxies), len(cluster.POPs), cluster.Graph.NumUsers())

	// Viewers subscribe to the live video through the full edge path.
	devices := make([]*device.Device, *viewers)
	received := make(chan int, 1<<16)
	for i := range devices {
		devices[i] = cluster.NewDevice(socialgraph.UserID(i + 1))
		if err := devices[i].Connect(); err != nil {
			log.Fatalf("viewer %d connect: %v", i, err)
		}
		st, err := devices[i].Subscribe(apps.AppLiveComments,
			fmt.Sprintf("liveVideoComments(videoID: %d)", *videoID), nil)
		if err != nil {
			log.Fatalf("viewer %d subscribe: %v", i, err)
		}
		go func(i int) {
			for range st.Updates {
				received <- i
			}
		}(i)
		defer devices[i].Close()
	}
	// Give subscriptions a moment to register with Pylon. The demo runs on
	// the wall clock, reached through the same Scheduler interface every
	// component takes (rule no-direct-time).
	clock := sim.RealClock{}
	cluster.Pylon.WaitForSubscriber(clock, apps.LVCTopic(*videoID), 5*time.Second)

	// Commenters post through the WAS.
	rng := rand.New(rand.NewSource(*seed))
	start := clock.Now()
	for i := 0; i < *comments; i++ {
		author := socialgraph.UserID(*viewers + 1 + rng.Intn(150))
		commenter := cluster.NewDevice(author)
		if _, err := commenter.Mutate(fmt.Sprintf(
			`postComment(videoID: %d, text: "comment number %d from user %d")`,
			*videoID, i, author)); err != nil {
			fmt.Fprintf(os.Stderr, "post %d: %v\n", i, err)
		}
		commenter.Close()
		sim.Sleep(clock, 2*time.Millisecond)
	}
	sim.Sleep(clock, *duration)

	total := len(received)
	cluster.Quiesce()
	fmt.Printf("\nposted %d comments in %v; %d viewer deliveries\n",
		*comments, clock.Now().Sub(start).Round(time.Millisecond), total)
	fmt.Printf("pylon: %d publishes, %d host deliveries, fanout mean %.1f\n",
		cluster.Pylon.Publishes.Value(), cluster.Pylon.Deliveries.Value(),
		float64(cluster.Pylon.FanoutSize.Mean()))
	fmt.Printf("brass: %d decisions, %d deliveries, %d filtered (filter rate %.0f%%)\n",
		cluster.TotalDecisions(), cluster.TotalDeliveries(), totalFiltered(cluster),
		filterRate(cluster)*100)
	fmt.Printf("tao:   %d reads (%d point, %d range), %d writes, %d shard accesses\n",
		cluster.TAO.Stats().Reads(), cluster.TAO.Stats().PointQueries.Value(),
		cluster.TAO.Stats().RangeQueries.Value(), cluster.TAO.Stats().Writes.Value(),
		cluster.TAO.Stats().ShardAccesses.Value())
	fmt.Printf("was:   %d mutations, %d payload fetches, %d privacy checks (%d denied)\n",
		cluster.WAS.Mutations.Value(), cluster.WAS.PayloadFetches.Value(),
		cluster.WAS.PrivacyChecks.Value(), cluster.WAS.PrivacyDenied.Value())
}

func totalFiltered(c *core.Cluster) int64 {
	var t int64
	for _, h := range c.Hosts {
		t += h.Filtered.Value()
	}
	return t
}

func filterRate(c *core.Cluster) float64 {
	d := c.TotalDecisions()
	if d == 0 {
		return 0
	}
	return 1 - float64(c.TotalDeliveries())/float64(d)
}
