package durlog

import (
	"testing"
	"time"

	"bladerunner/internal/sim"
)

// BenchmarkDurlogAppend is the runtime twin of the //brlint:hotpath
// annotation on Append: steady-state appends (slab writes, rotations,
// structural evictions, retention checks all exercised as the ring
// cycles) must stay at 0 allocs/op. CI gates on the allocs column.
func BenchmarkDurlogAppend(b *testing.B) {
	clk := sim.NewManualClock(time.Unix(0, 0))
	l := New(Config{
		Clock:          clk,
		HotBytes:       16 << 10,
		SegmentEntries: 256,
		Segments:       4,
		Retention:      time.Minute,
	})
	const topic = "/MB/bench"
	l.Open(topic)
	payload := make([]byte, 96)
	for i := range payload {
		payload[i] = byte(i)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(topic, uint64(i+1), payload)
	}
	b.StopTimer()
	if got := l.Appends.Value(); got != int64(b.N) {
		b.Fatalf("appended %d, want %d", got, b.N)
	}
}

// BenchmarkDurlogReadFrom sizes the catch-up read cost (control path —
// allocations expected and acceptable).
func BenchmarkDurlogReadFrom(b *testing.B) {
	clk := sim.NewManualClock(time.Unix(0, 0))
	l := New(Config{Clock: clk})
	const topic = "/MB/bench"
	l.Open(topic)
	payload := make([]byte, 96)
	for seq := uint64(1); seq <= 512; seq++ {
		l.Append(topic, seq, payload)
	}
	c, _ := l.EarliestCursor(topic)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.ReadFrom(topic, c); err != nil {
			b.Fatal(err)
		}
	}
}
