package experiments

import "testing"

// TestGeoFailoverAllStreamsRecover smoke-tests the live geo-failover
// experiment: every stream homed in the cut region must render a post-cut
// payload via a rewritten cross-region stream, and the partition backlog
// must drain after heal.
func TestGeoFailoverAllStreamsRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("live-stack experiment; skipped in -short")
	}
	r := GeoFailover(1)
	if got := row(t, r, "streams failed over").Measured; got != "12/12" {
		t.Errorf("streams failed over = %s, want 12/12", got)
	}
	if got := row(t, r, "streams served cross-region after cut").Measured; got != "12/12" {
		t.Errorf("served cross-region = %s, want 12/12", got)
	}
	if got := row(t, r, "partition backlog drained after heal").Measured; got != "true" {
		t.Errorf("backlog drained = %s, want true", got)
	}
	if pts := r.Series["failover_time_cdf"]; len(pts) == 0 {
		t.Error("missing failover_time_cdf series")
	}
	if pts := r.Series["repl_lag_cdf"]; len(pts) == 0 {
		t.Error("missing repl_lag_cdf series")
	}
}
