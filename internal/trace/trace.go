// Package trace is the end-to-end event-tracing plane: per-hop spans that
// follow one sampled mutation from the WAS publish call, through Pylon
// fan-out and the BRASS payload fetch, across the BURST wire and every edge
// proxy hop, down to the device apply. It is stdlib-only and entirely
// sim.Clock-driven, so the same traces come out of wall-clock runs and
// virtual-time experiments.
//
// The design center is "free when off": every component holds a *Tracer
// that may be nil, and every event carries an ID that is zero unless the
// seeded sampler selected it. Starting a span on a nil tracer or a zero ID
// returns an inactive value-type Span whose methods are no-ops — no
// allocation, no atomic, no branch beyond the guard — which is what keeps
// the PylonPublish/HotTopicFanout hot paths at 0 allocs/op with tracing
// disabled.
//
// Propagation uses three carriers (see DESIGN.md §9a):
//
//   - pylon.Event.Trace — WAS → Pylon → BRASS (in-process hand-off)
//   - burst.Delta.Trace — BRASS → proxies → device (on the wire, per delta)
//   - the "trace-stream" BURST subscribe header — a stable stream identity
//     stamped by the device, surviving rewrite_request and resubscribe, so
//     recovery paths remain attributable in traces.
package trace

import (
	"strconv"
	"sync"
	"time"

	"bladerunner/internal/sim"
)

// ID identifies one sampled mutation end to end. The zero ID means "not
// sampled"; every span-producing call site checks it before doing work.
type ID uint64

// Canonical hop names. Parent links between them form the span tree the
// merger assembles; the comment on each names its parent hop.
const (
	HopPublish = "was.publish"   // root: WAS Publish call until the Pylon accepts the event
	HopFanout  = "pylon.fanout"  // parent was.publish: subscriber resolution + host delivery
	HopDeliver = "brass.deliver" // parent pylon.fanout: instance event-loop turn for the event
	HopFetch   = "brass.fetch"   // parent brass.deliver: payload fetch incl. cache/singleflight
	HopPrivacy = "was.privacy"   // parent brass.fetch: per-viewer visibility check
	HopResolve = "was.resolve"   // parent brass.fetch: viewer-independent payload resolution
	HopFlush   = "burst.flush"   // parent brass.fetch: BURST frame encode + send
	HopRelay   = "edge.relay"    // parent burst.flush: one span per proxy the batch crosses
	HopApply   = "device.apply"  // parent burst.flush: device-side decode and apply
)

// Parent returns the canonical parent hop of hop ("" for roots and unknown
// hops).
func Parent(hop string) string {
	switch hop {
	case HopFanout:
		return HopPublish
	case HopDeliver:
		return HopFanout
	case HopFetch:
		return HopDeliver
	case HopPrivacy, HopResolve, HopFlush:
		return HopFetch
	case HopRelay, HopApply:
		return HopFlush
	}
	return ""
}

// Sampler decides, deterministically under a seed, which mutations get a
// trace context. It is safe for concurrent use; a nil Sampler never
// samples.
type Sampler struct {
	mu    sync.Mutex
	state uint64
	// threshold is the sampling cut in the xorshift output space;
	// ^uint64(0) means "always sample".
	threshold uint64
	always    bool
}

// NewSampler returns a sampler selecting roughly the given rate of
// mutations (rate <= 0 never samples, rate >= 1 always samples). Two
// samplers built from the same seed issue the same ID sequence, which is
// what makes seeded brtrace runs reproduce span-for-span.
func NewSampler(seed int64, rate float64) *Sampler {
	if rate <= 0 {
		return nil
	}
	s := &Sampler{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x0b1ade}
	if rate >= 1 {
		s.always = true
	} else {
		s.threshold = uint64(rate * float64(^uint64(0)))
	}
	return s
}

// Trace returns a fresh nonzero ID if this mutation is sampled, else 0.
func (s *Sampler) Trace() ID {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	// xorshift64: full-period, seed-deterministic, never yields 0 from a
	// nonzero state (the constructor guarantees a nonzero start).
	x := s.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.state = x
	s.mu.Unlock()
	if s.always || x <= s.threshold {
		return ID(x)
	}
	return 0
}

// Attr is one structured span annotation.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanData is one closed span as stored in a collector ring.
type SpanData struct {
	Trace  ID
	Hop    string // canonical hop name (HopPublish, ...)
	Proc   string // collecting process (pylon, brass-us-east-0, proxy-..., device-...)
	Parent string // parent hop name ("" for roots)
	Start  time.Time
	End    time.Time
	Attrs  []Attr
}

// Duration returns the span's wall (or virtual) time.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Attr returns the value of the named annotation ("" when absent).
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Tracer opens spans for one process and deposits them in that process's
// collector. A nil *Tracer is valid and inert, so call sites never branch
// on "is tracing configured" beyond the method's own guard.
type Tracer struct {
	proc  string
	clock sim.Clock
	col   *Collector
}

// Proc returns the process name spans from this tracer carry.
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// Start opens a span for the given trace at the given hop. It returns an
// inactive no-op span when the tracer is nil or the event is unsampled
// (id == 0); the returned value never escapes to the heap in that case.
//
// off; Span is a value type on both branches.
//
//brlint:hotpath the inactive-span path is what keeps tracing free when
func (t *Tracer) Start(id ID, hop, parent string) Span {
	if t == nil || id == 0 {
		return Span{}
	}
	return Span{
		tr:    t,
		id:    id,
		hop:   hop,
		paren: parent,
		start: t.clock.Now(),
	}
}

// Span is one in-flight hop measurement. The zero Span is inactive and all
// its methods are no-ops. Spans are values: copy freely, but End exactly
// one copy (the brlint span-must-end rule enforces that every Start has an
// End on each return path).
type Span struct {
	tr    *Tracer
	id    ID
	hop   string
	paren string
	start time.Time
	attrs []Attr
	ended bool
}

// Active reports whether the span is recording.
func (s *Span) Active() bool { return s.tr != nil && !s.ended }

// Annotate attaches a key/value annotation (no-op when inactive).
//
// sampled.
//
//brlint:hotpath called on every publish/deliver; free unless the event was
func (s *Span) Annotate(key, value string) {
	if s.tr == nil || s.ended {
		return
	}
	//brlint:allow(hot-path-alloc) active spans only: the append runs for sampled events, a rate the sampler caps; unsampled events return on the nil guard above
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AnnotateInt attaches an integer annotation (no-op when inactive).
//
// sampled.
//
//brlint:hotpath called on every publish/deliver; free unless the event was
func (s *Span) AnnotateInt(key string, v int64) {
	if s.tr == nil || s.ended {
		return
	}
	//brlint:allow(hot-path-alloc) active spans only: append plus integer formatting run for sampled events; unsampled events return on the nil guard above
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(v, 10)})
}

// Drop annotates the span with the canonical shed/drop marker used across
// the overload-control plane ("drop" = reason), so assembled traces show
// exactly where an update left the pipeline. No-op when inactive.
//
//brlint:hotpath shed decisions sit on admission-controlled fast paths.
func (s *Span) Drop(reason string) {
	s.Annotate("drop", reason)
}

// End closes the span and hands it to the process collector. Ending an
// inactive or already-ended span is a no-op, so defer sp.End() is always
// safe.
//
// the event was sampled.
//
//brlint:hotpath closed on every publish/deliver return path; free unless
func (s *Span) End() {
	if s.tr == nil || s.ended {
		return
	}
	s.ended = true
	//brlint:allow(hot-path-alloc) active spans only: the collector ring append runs for sampled events; unsampled events return on the nil guard above
	s.tr.col.add(SpanData{
		Trace:  s.id,
		Hop:    s.hop,
		Proc:   s.tr.proc,
		Parent: s.paren,
		Start:  s.start,
		End:    s.tr.clock.Now(),
		Attrs:  s.attrs,
	})
}
